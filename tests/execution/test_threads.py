"""Tests for the real-threads backend (correctness, not speed)."""

import numpy as np
import pytest

from repro.core import randomized_gauss_seidel
from repro.exceptions import ModelError, ShapeError
from repro.execution import ThreadedAsyRGS
from repro.rng import DirectionStream
from repro.workloads import random_unit_diagonal_spd

from ..conftest import manufactured_system


@pytest.fixture(scope="module")
def system():
    A = random_unit_diagonal_spd(30, nnz_per_row=4, offdiag_scale=0.6, seed=8)
    b, x_star = manufactured_system(A, seed=9)
    return A, b, x_star


class TestSingleThread:
    def test_one_thread_matches_serial_rgs(self, system):
        """With one thread there is no concurrency: the run must equal
        sequential randomized Gauss-Seidel on the same stream."""
        A, b, _ = system
        n = A.shape[0]
        ref = randomized_gauss_seidel(
            A, b, sweeps=5, directions=DirectionStream(n, seed=3), record_history=False
        )
        t = ThreadedAsyRGS(A, b, nthreads=1, directions=DirectionStream(n, seed=3))
        out = t.run(np.zeros(n), 5 * n)
        np.testing.assert_allclose(out.x, ref.x, rtol=1e-12, atol=1e-14)


class TestMultiThread:
    @pytest.mark.parametrize("nthreads", [2, 4])
    @pytest.mark.parametrize("atomic", [True, False])
    def test_converges(self, system, nthreads, atomic):
        A, b, x_star = system
        n = A.shape[0]
        t = ThreadedAsyRGS(
            A, b, nthreads=nthreads, atomic=atomic,
            directions=DirectionStream(n, seed=3),
        )
        out = t.run(np.zeros(n), 120 * n)
        assert np.abs(out.x - x_star).max() < 1e-5
        assert out.iterations == 120 * n

    def test_per_thread_accounting(self, system):
        A, b, _ = system
        n = A.shape[0]
        t = ThreadedAsyRGS(A, b, nthreads=3, directions=DirectionStream(n, seed=3))
        out = t.run(np.zeros(n), 100)
        assert sum(out.per_thread_iterations) == 100
        assert max(out.per_thread_iterations) - min(out.per_thread_iterations) <= 1


class TestValidation:
    def test_zero_threads_rejected(self, system):
        A, b, _ = system
        with pytest.raises(ModelError):
            ThreadedAsyRGS(A, b, nthreads=0)

    def test_multirhs_rejected(self, system):
        A, b, _ = system
        with pytest.raises(ShapeError):
            ThreadedAsyRGS(A, np.stack([b, b], axis=1), nthreads=2)

    def test_bad_x0_rejected(self, system):
        A, b, _ = system
        t = ThreadedAsyRGS(A, b, nthreads=2)
        with pytest.raises(ShapeError):
            t.run(np.zeros(5), 10)
