"""Tests for the real-threads backend (correctness, not speed)."""

import numpy as np
import pytest

from repro.core import randomized_gauss_seidel
from repro.core.residuals import column_relative_residuals
from repro.exceptions import ModelError, ShapeError
from repro.execution import PhasedSimulator, ThreadedAsyRGS
from repro.rng import DirectionStream
from repro.sparse import CSRMatrix
from repro.workloads import random_unit_diagonal_spd

from ..conftest import manufactured_system


@pytest.fixture(scope="module")
def system():
    A = random_unit_diagonal_spd(30, nnz_per_row=4, offdiag_scale=0.6, seed=8)
    b, x_star = manufactured_system(A, seed=9)
    return A, b, x_star


@pytest.fixture(scope="module")
def block_system(system):
    """The module system extended to a 4-column RHS block."""
    A, b, _ = system
    n = A.shape[0]
    rng = DirectionStream(n, seed=44)
    X_star = np.column_stack(
        [rng.directions(j * n, n).astype(np.float64) / n - 0.5 for j in range(4)]
    )
    return A, A.matmat(X_star), X_star


def poisoned_matrix(A: CSRMatrix) -> CSRMatrix:
    """A structurally corrupt copy: in every row one off-diagonal column
    index points out of bounds, so whichever row a worker draws first,
    its gather raises. The diagonal stays intact, so construction-time
    diagonal checks still pass."""
    n = A.shape[0]
    indices = A.indices.copy()
    for r in range(n):
        for pos in range(int(A.indptr[r]), int(A.indptr[r + 1])):
            if indices[pos] != r:
                indices[pos] = n + 7
                break
    return CSRMatrix(A.shape, A.indptr.copy(), indices, A.data.copy(),
                     check=False, sorted_indices=False)


class _PoisonedView:
    """A per-processor stream view that raises on first use — a stand-in
    for any failure inside a worker's segment loop."""

    def directions(self, start, count):
        raise RuntimeError("poisoned stream view")


class PoisonedStream(DirectionStream):
    """Direction stream whose worker views blow up: exercises the
    crash path of ``solve`` without corrupting the matrix the parent
    uses for its residual checks."""

    def for_processor(self, pid, nproc):
        return _PoisonedView()


class TestSingleThread:
    def test_one_thread_matches_serial_rgs(self, system):
        """With one thread there is no concurrency: the run must equal
        sequential randomized Gauss-Seidel on the same stream."""
        A, b, _ = system
        n = A.shape[0]
        ref = randomized_gauss_seidel(
            A, b, sweeps=5, directions=DirectionStream(n, seed=3), record_history=False
        )
        t = ThreadedAsyRGS(A, b, nthreads=1, directions=DirectionStream(n, seed=3))
        out = t.run(np.zeros(n), 5 * n)
        np.testing.assert_allclose(out.x, ref.x, rtol=1e-12, atol=1e-14)


class TestMultiThread:
    @pytest.mark.parametrize("nthreads", [2, 4])
    @pytest.mark.parametrize("atomic", [True, False])
    def test_converges(self, system, nthreads, atomic):
        A, b, x_star = system
        n = A.shape[0]
        t = ThreadedAsyRGS(
            A, b, nthreads=nthreads, atomic=atomic,
            directions=DirectionStream(n, seed=3),
        )
        out = t.run(np.zeros(n), 120 * n)
        assert np.abs(out.x - x_star).max() < 1e-5
        assert out.iterations == 120 * n

    def test_per_thread_accounting(self, system):
        A, b, _ = system
        n = A.shape[0]
        t = ThreadedAsyRGS(A, b, nthreads=3, directions=DirectionStream(n, seed=3))
        out = t.run(np.zeros(n), 100)
        assert sum(out.per_thread_iterations) == 100
        assert max(out.per_thread_iterations) - min(out.per_thread_iterations) <= 1


class TestBlockRHS:
    def test_one_thread_matches_phased_engine(self, block_system):
        """Cross-engine agreement: one thread is deterministic, so the
        block run must equal the phased engine at nproc=1 on the same
        direction stream, bit for bit."""
        A, B, _ = block_system
        n, k = B.shape
        t = ThreadedAsyRGS(A, B, nthreads=1, directions=DirectionStream(n, seed=3))
        out = t.run(np.zeros((n, k)), 6 * n)
        ref = PhasedSimulator(
            A, B, nproc=1, directions=DirectionStream(n, seed=3)
        ).run(np.zeros((n, k)), 6 * n)
        np.testing.assert_array_equal(out.x, ref.x)
        assert out.column_updates == 6 * n * k

    @pytest.mark.multiprocess
    def test_one_worker_matches_process_backend(self, block_system):
        """Threads, processes, and the phased engine realize the same
        deterministic execution at one worker on the same stream."""
        from repro.execution import ProcessAsyRGS

        A, B, _ = block_system
        n, k = B.shape
        t = ThreadedAsyRGS(A, B, nthreads=1, directions=DirectionStream(n, seed=3))
        out_t = t.run(np.zeros((n, k)), 5 * n)
        out_p = ProcessAsyRGS(
            A, B, nproc=1, directions=DirectionStream(n, seed=3)
        ).run(None, 5 * n)
        np.testing.assert_allclose(out_t.x, out_p.x, rtol=1e-12, atol=1e-14)

    @pytest.mark.parametrize("nthreads", [2, 4])
    @pytest.mark.parametrize("atomic", [True, False])
    def test_block_converges(self, block_system, nthreads, atomic):
        A, B, X_star = block_system
        n = A.shape[0]
        t = ThreadedAsyRGS(
            A, B, nthreads=nthreads, atomic=atomic,
            directions=DirectionStream(n, seed=3),
        )
        out = t.run(np.zeros_like(B), 120 * n)
        assert np.abs(out.x - X_star).max() < 1e-5
        assert out.iterations == 120 * n

    def test_solve_continues_stream_across_epochs(self, block_system):
        """A solve's segments continue the direction stream: at one
        thread with retirement off, segmented execution must equal one
        long free-running run."""
        A, B, _ = block_system
        n, k = B.shape
        t = ThreadedAsyRGS(A, B, nthreads=1, directions=DirectionStream(n, seed=3))
        solved = t.solve(tol=0.0, max_sweeps=6, sync_every_sweeps=2, retire=False)
        free = t.run(np.zeros((n, k)), 6 * n)
        np.testing.assert_array_equal(solved.x, free.x)
        assert solved.sync_points == 3


class TestRetirement:
    def test_retired_column_stays_below_tol(self, block_system):
        A, B, _ = block_system
        n = A.shape[0]
        t = ThreadedAsyRGS(A, B, nthreads=2, directions=DirectionStream(n, seed=3))
        res = t.solve(tol=1e-8, max_sweeps=400, sync_every_sweeps=10)
        assert res.converged
        assert res.converged_columns.all()
        assert (res.column_sweeps >= 0).all()
        final = column_relative_residuals(A, res.x, B)
        assert (final < 1e-8).all()

    def test_retired_column_is_frozen(self, block_system):
        """A column whose x0 is already exact retires at sweep 0 and is
        never written again — at one thread its iterate is bit-frozen,
        and the work accounting only charges the active column."""
        A, B, X_star = block_system
        n, k = B.shape
        x0 = np.zeros((n, k))
        x0[:, 1] = X_star[:, 1]  # column 1 starts converged
        t = ThreadedAsyRGS(A, B, nthreads=1, directions=DirectionStream(n, seed=3))
        res = t.solve(tol=1e-10, max_sweeps=300, x0=x0, sync_every_sweeps=10)
        assert res.converged
        assert res.column_sweeps[1] == 0
        np.testing.assert_array_equal(res.x[:, 1], X_star[:, 1])
        # Only k-1 columns were ever refreshed.
        assert res.column_updates == res.iterations * (k - 1)

    def test_no_retire_updates_every_column(self, block_system):
        A, B, X_star = block_system
        n, k = B.shape
        x0 = np.zeros((n, k))
        x0[:, 1] = X_star[:, 1]
        t = ThreadedAsyRGS(A, B, nthreads=1, directions=DirectionStream(n, seed=3))
        res = t.solve(
            tol=1e-10, max_sweeps=300, x0=x0, sync_every_sweeps=10, retire=False
        )
        assert res.converged
        assert res.column_updates == res.iterations * k

    def test_single_rhs_solve(self, system):
        A, b, x_star = system
        n = A.shape[0]
        t = ThreadedAsyRGS(A, b, nthreads=2, directions=DirectionStream(n, seed=3))
        res = t.solve(tol=1e-8, max_sweeps=400, sync_every_sweeps=10)
        assert res.converged
        assert res.converged_columns.shape == (1,)
        assert np.abs(res.x - x_star).max() < 1e-5


class TestWorkerCrash:
    """Regression: a worker that raises must fail the run loudly instead
    of returning a partially-updated iterate as a success."""

    def test_poisoned_matrix_raises_with_worker_id(self, system):
        A, b, _ = system
        bad = poisoned_matrix(A)
        t = ThreadedAsyRGS(bad, b, nthreads=3, directions=DirectionStream(A.shape[0], seed=3))
        with pytest.raises(ModelError, match=r"worker thread \d+ crashed"):
            t.run(np.zeros(A.shape[0]), 50 * A.shape[0])

    def test_original_exception_chained(self, system):
        A, b, _ = system
        bad = poisoned_matrix(A)
        t = ThreadedAsyRGS(bad, b, nthreads=2, directions=DirectionStream(A.shape[0], seed=3))
        with pytest.raises(ModelError) as err:
            t.run(np.zeros(A.shape[0]), 50 * A.shape[0])
        assert isinstance(err.value.__cause__, IndexError)

    def test_solve_propagates_worker_crash(self, block_system):
        """The epoch loop of solve() must surface a worker failure too
        (the stream is poisoned instead of the matrix, so the parent's
        own residual checks stay healthy)."""
        A, B, _ = block_system
        t = ThreadedAsyRGS(
            A, B, nthreads=2, directions=PoisonedStream(A.shape[0], seed=3)
        )
        with pytest.raises(ModelError, match="crashed"):
            t.solve(tol=1e-8, max_sweeps=100)

    def test_siblings_released_not_deadlocked(self, system):
        """The crashing worker aborts the start barrier, so a crash with
        many threads returns promptly instead of wedging the join."""
        A, b, _ = system
        bad = poisoned_matrix(A)
        t = ThreadedAsyRGS(bad, b, nthreads=8, directions=DirectionStream(A.shape[0], seed=3))
        with pytest.raises(ModelError):
            t.run(np.zeros(A.shape[0]), 8)  # fewer updates than threads


class TestValidation:
    def test_zero_threads_rejected(self, system):
        A, b, _ = system
        with pytest.raises(ModelError):
            ThreadedAsyRGS(A, b, nthreads=0)

    def test_three_dim_b_rejected(self, system):
        A, b, _ = system
        with pytest.raises(ShapeError):
            ThreadedAsyRGS(A, np.zeros((A.shape[0], 2, 2)), nthreads=2)

    def test_zero_column_block_rejected(self, system):
        A, b, _ = system
        with pytest.raises(ShapeError):
            ThreadedAsyRGS(A, np.empty((A.shape[0], 0)), nthreads=2)

    def test_bad_x0_rejected(self, system):
        A, b, _ = system
        t = ThreadedAsyRGS(A, b, nthreads=2)
        with pytest.raises(ShapeError):
            t.run(np.zeros(5), 10)
