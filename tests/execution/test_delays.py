"""Unit tests for the bounded-delay models (Assumptions A-3/A-4)."""

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.execution import (
    AdversarialDelay,
    FixedDelay,
    InconsistentAdversarial,
    InconsistentUniform,
    ProcessorPhaseDelay,
    UniformDelay,
    ZeroDelay,
)

ALL_MODELS = [
    ZeroDelay(),
    FixedDelay(3),
    UniformDelay(5, seed=1),
    AdversarialDelay(4),
    ProcessorPhaseDelay(4, jitter=2, seed=2),
    InconsistentUniform(5, miss_prob=0.5, seed=3),
    InconsistentAdversarial(4),
]


class TestWindowInvariant:
    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: type(m).__name__)
    def test_missed_within_window(self, model):
        """Every model must honor eq. (6)/(7): misses only inside
        [max(0, j−τ), j−1]."""
        for j in list(range(0, 12)) + [50, 200, 1001]:
            missed = model.missed(j)
            model.validate_window(j, missed)

    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: type(m).__name__)
    def test_missed_sorted_unique(self, model):
        for j in (0, 1, 7, 64, 300):
            missed = model.missed(j)
            assert np.all(np.diff(missed) > 0) or missed.size <= 1

    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: type(m).__name__)
    def test_deterministic_per_index(self, model):
        """Assumption A-4 implementation: the schedule is a pure function
        of the iteration index."""
        for j in (3, 17, 99):
            np.testing.assert_array_equal(model.missed(j), model.missed(j))

    def test_validate_window_rejects_violation(self):
        m = FixedDelay(2)
        with pytest.raises(ModelError):
            m.validate_window(10, np.array([3]))
        with pytest.raises(ModelError):
            m.validate_window(10, np.array([10]))


class TestConsistentModels:
    def test_zero_delay_never_misses(self):
        m = ZeroDelay()
        for j in range(20):
            assert m.missed(j).size == 0
        assert m.tau == 0

    def test_fixed_delay_exact_suffix(self):
        m = FixedDelay(3)
        np.testing.assert_array_equal(m.missed(10), [7, 8, 9])

    def test_fixed_delay_clipped_at_start(self):
        m = FixedDelay(5)
        np.testing.assert_array_equal(m.missed(2), [0, 1])
        assert m.missed(0).size == 0

    def test_adversarial_always_maximal(self):
        m = AdversarialDelay(4)
        for j in (10, 57, 123):
            assert m.lag(j) == 4

    def test_uniform_delay_bounded_and_varying(self):
        m = UniformDelay(6, seed=5)
        lags = [m.lag(j) for j in range(200, 400)]
        assert max(lags) <= 6
        assert min(lags) >= 0
        assert len(set(lags)) > 1  # actually random

    def test_uniform_delay_uses_all_values(self):
        m = UniformDelay(3, seed=7)
        lags = {m.lag(j) for j in range(100, 1100)}
        assert lags == {0, 1, 2, 3}

    def test_processor_phase_base_lag(self):
        m = ProcessorPhaseDelay(4)
        for j in (10, 20, 99):
            assert m.lag(j) == 3
        assert m.tau == 3

    def test_processor_phase_jitter_range(self):
        m = ProcessorPhaseDelay(4, jitter=2, seed=9)
        lags = [m.lag(j) for j in range(100, 300)]
        assert min(lags) >= 3
        assert max(lags) <= 5
        assert m.tau == 5

    def test_consistent_flags(self):
        assert ZeroDelay().is_consistent
        assert FixedDelay(2).is_consistent
        assert UniformDelay(2).is_consistent
        assert not InconsistentUniform(2).is_consistent
        assert not InconsistentAdversarial(2).is_consistent

    def test_consistent_missed_is_suffix(self):
        for model in (FixedDelay(4), UniformDelay(4, seed=1), AdversarialDelay(4)):
            for j in (5, 20, 101):
                missed = model.missed(j)
                if missed.size:
                    np.testing.assert_array_equal(
                        missed, np.arange(j - missed.size, j)
                    )


class TestInconsistentModels:
    def test_inconsistent_produces_gaps(self):
        """The defining feature of iteration (9): non-suffix missed sets."""
        m = InconsistentUniform(8, miss_prob=0.5, seed=11)
        found_gap = False
        for j in range(20, 400):
            missed = m.missed(j)
            if missed.size >= 2 and (missed[-1] != j - 1 or np.any(np.diff(missed) > 1)):
                found_gap = True
                break
        assert found_gap

    def test_zero_probability_never_misses(self):
        m = InconsistentUniform(5, miss_prob=0.0, seed=1)
        for j in range(50):
            assert m.missed(j).size == 0

    def test_probability_one_misses_everything(self):
        m = InconsistentUniform(5, miss_prob=1.0, seed=1)
        np.testing.assert_array_equal(m.missed(10), [5, 6, 7, 8, 9])

    def test_invalid_probability(self):
        with pytest.raises(ModelError):
            InconsistentUniform(5, miss_prob=1.5)

    def test_adversarial_inconsistent_misses_whole_window(self):
        m = InconsistentAdversarial(3)
        np.testing.assert_array_equal(m.missed(10), [7, 8, 9])


class TestValidation:
    def test_negative_tau_rejected(self):
        with pytest.raises(ModelError):
            FixedDelay(-1)

    def test_processor_phase_needs_processor(self):
        with pytest.raises(ModelError):
            ProcessorPhaseDelay(0)

    def test_negative_jitter_rejected(self):
        with pytest.raises(ModelError):
            ProcessorPhaseDelay(4, jitter=-1)

    def test_repr_mentions_tau(self):
        assert "tau=5" in repr(UniformDelay(5))
