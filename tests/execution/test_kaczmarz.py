"""AsyRK: asynchronous randomized Kaczmarz on the shared pool core.

The rectangular counterpart of ``test_processes.py`` — the pool
machinery itself (gates, reuse, crash reporting, capacity layouts) is
exercised there; this file pins what is *specific* to the Kaczmarz
method: least-squares convergence judged by the normal-equations
residual, the rectangular geometry (m-row draws, n-row iterate), the
construction-time rejections, and the exact linearity of the iteration
in ``(b, x)`` over a reused pool.
"""

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.execution import AsyRK, LeastSquaresTracker, make_solver
from repro.rng import DirectionStream
from repro.sparse import CSRMatrix
from repro.workloads import random_least_squares

pytestmark = pytest.mark.multiprocess


def normal_equations_residual(A, x, b):
    """``‖Aᵀ(b − Ax)‖ / ‖Aᵀb‖`` — the measure AsyRK's tracker uses."""
    At = A.transpose()
    return float(
        np.linalg.norm(At.matvec(b - A.matvec(x)))
        / np.linalg.norm(At.matvec(b))
    )


@pytest.fixture(scope="module")
def consistent():
    return random_least_squares(240, 60, nnz_per_row=6, noise_scale=0.0, seed=3)


@pytest.fixture(scope="module")
def inconsistent():
    return random_least_squares(240, 60, nnz_per_row=6, noise_scale=0.01, seed=3)


class TestLeastSquaresConvergence:
    def test_consistent_system_to_tight_tolerance(self, consistent):
        """Noise-free: the minimizer is the generating vector and the
        normal-equations residual can be driven essentially to zero."""
        prob = consistent
        res = AsyRK(
            prob.A,
            prob.b,
            nproc=1,
            beta=0.8,
            directions=DirectionStream(prob.A.shape[0], seed=0),
        ).solve(tol=1e-6, max_sweeps=60)
        assert res.converged
        assert res.x.shape == (prob.A.shape[1],)
        assert normal_equations_residual(prob.A, res.x, prob.b) < 1e-6
        assert np.allclose(res.x, prob.x_generating, atol=1e-5)

    def test_inconsistent_system_to_ls_tolerance(self, inconsistent):
        """With noise the plain residual plateaus at the noise floor,
        but the normal-equations residual still passes the tolerance:
        the solver finds the least-squares point, not ``Ax = b``."""
        prob = inconsistent
        res = AsyRK(
            prob.A,
            prob.b,
            nproc=2,
            beta=0.8,
            directions=DirectionStream(prob.A.shape[0], seed=1),
        ).solve(tol=2e-2, max_sweeps=80)
        assert res.converged
        assert normal_equations_residual(prob.A, res.x, prob.b) < 2e-2
        # The plain residual cannot vanish on an inconsistent system.
        assert float(np.linalg.norm(prob.b - prob.A.matvec(res.x))) > 0.0

    def test_block_rhs_with_retirement(self, consistent):
        """A block of right-hand sides converges per column, and the
        default retirement policy records a sweep count per column."""
        prob = consistent
        B = np.column_stack([prob.b, 2.0 * prob.b, -prob.b])
        res = AsyRK(
            prob.A,
            B,
            nproc=2,
            beta=0.8,
            directions=DirectionStream(prob.A.shape[0], seed=2),
        ).solve(tol=1e-4, max_sweeps=80)
        assert res.converged
        assert res.converged_columns.all()
        assert res.x.shape == (prob.A.shape[1], 3)
        assert (res.column_sweeps >= 0).all()
        for j, scale in enumerate([1.0, 2.0, -1.0]):
            assert normal_equations_residual(
                prob.A, res.x[:, j], scale * prob.b
            ) < 1e-4

    def test_make_solver_builds_asyrk(self, consistent):
        prob = consistent
        solver = make_solver(
            "asyrk", prob.A, prob.b, nproc=1, beta=0.8
        )
        assert isinstance(solver, AsyRK)
        assert solver.method_name == "asyrk"


class TestConstructionRejections:
    def test_atomic_rejected(self, consistent):
        prob = consistent
        with pytest.raises(ModelError, match="does not support atomic=True"):
            AsyRK(prob.A, prob.b, nproc=1, atomic=True)

    def test_zero_row_rejected(self):
        # Row 1 of this 3x2 rectangle is identically empty.
        A = CSRMatrix(
            (3, 2),
            np.array([0, 1, 1, 2], dtype=np.int64),
            np.array([0, 1], dtype=np.int64),
            np.array([1.0, 1.0]),
        )
        with pytest.raises(ModelError, match="row 1 of A is identically zero"):
            AsyRK(A, np.ones(3), nproc=1)


class TestTracker:
    def test_normal_equations_criterion(self, inconsistent):
        """At the exact least-squares point the tracker reports
        convergence even though ``Ax = b`` has no solution; at the
        origin it does not."""
        prob = inconsistent
        x_ls, *_ = np.linalg.lstsq(prob.A.to_dense(), prob.b, rcond=None)
        At = prob.A.transpose()
        done = LeastSquaresTracker(prob.A, At, x_ls, prob.b, tol=1e-8)
        assert done.done_mask.all()
        cold = LeastSquaresTracker(
            prob.A, At, np.zeros(prob.A.shape[1]), prob.b, tol=1e-8
        )
        assert not cold.done_mask.any()


class TestPoolReuseLinearity:
    def test_scaled_rhs_scales_the_trajectory_exactly(self, consistent):
        """The Kaczmarz iteration is linear in ``(b, x)`` and the reused
        pool replays the same direction prefix, so solving ``2b`` from
        ``x0 = 0`` on the same pool yields exactly twice the iterate —
        bit for bit, since scaling by 2 is exact in float64."""
        prob = consistent
        m = prob.A.shape[0]
        total = 2 * m
        with AsyRK(
            prob.A,
            prob.b,
            nproc=1,
            beta=0.8,
            directions=DirectionStream(m, seed=5),
        ) as solver:
            base = solver.run(None, total)
            doubled = solver.run(None, total, b=2.0 * prob.b)
        assert solver.spawn_count == 1
        assert np.array_equal(doubled.x, 2.0 * base.x)
