"""Tests for the halo transport seam (`execution.halo`).

Three layers, cheapest first:

* :class:`LocalBoard` against an inline re-implementation of the PR 8
  board/lock code it was extracted from — random publish/pull/snapshot
  sequences must agree bit for bit (the refactor's behavior-preserving
  claim, as a property test).
* :class:`WireHalo` and :class:`NodeShard` against scripted fake wire
  clients — push payload shapes, best-effort failure counting,
  generation-rewind drops, and crash attribution naming the peer — no
  sockets, tier-1 fast.
* End-to-end transport-seam bit-identity on real ``nproc=1`` pools
  (``multiprocess`` marker): a ``shards=N`` solve through the default
  :class:`LocalBoard` equals the same solve through the inline
  reference transport, float for float, on the same seeds
  ``tests/execution/test_sharded.py`` pins.
"""

import threading

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.execution import (
    HaloTransport,
    LocalBoard,
    NodeShard,
    ShardedSolver,
    WireHalo,
    split_address,
)
from repro.workloads import laplacian_2d

pytestmark = pytest.mark.shard


class TestSplitAddress:
    def test_host_port(self):
        assert split_address("10.0.0.7:7101") == ("10.0.0.7", 7101)

    def test_hostname(self):
        assert split_address("node-b:80") == ("node-b", 80)

    @pytest.mark.parametrize(
        "bad", ["nodeb", ":7101", "node:b:", "node:0", "node:65536", "node:x"]
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(ModelError, match="HOST:PORT|port"):
            split_address(bad)


# ---------------------------------------------------------------------------
# LocalBoard vs the inline PR 8 board it was extracted from
# ---------------------------------------------------------------------------


class _ReferenceBoard:
    """The pre-seam exchange, re-implemented inline exactly as
    ``ShardedSolver.solve`` used to hold it: one (n, k) array, one
    mutex, publishes locked, pulls deliberately not."""

    def __init__(self, x0, bounds):
        self._board = np.array(x0, dtype=np.float64, copy=True)
        self._bounds = [(int(r0), int(r1)) for r0, r1 in bounds]
        self._gen = np.zeros(len(self._bounds), dtype=np.int64)
        self._lock = threading.Lock()

    def publish(self, shard, rows, generation):
        r0, r1 = self._bounds[shard]
        with self._lock:
            self._board[r0:r1] = rows
            self._gen[shard] = generation

    def pull(self, halo_rows):
        return self._board[halo_rows]

    def snapshot(self):
        with self._lock:
            return self._board.copy()

    def close(self):
        pass


class TestLocalBoardExtraction:
    BOUNDS = [(0, 5), (5, 11), (11, 16)]

    def _pair(self, k, seed):
        rng = np.random.default_rng(seed)
        x0 = rng.standard_normal((16, k))
        return (
            LocalBoard(x0, self.BOUNDS),
            _ReferenceBoard(x0, self.BOUNDS),
            rng,
        )

    @pytest.mark.parametrize("k", [1, 3])
    @pytest.mark.parametrize("seed", [0, 7, 42])
    def test_random_sequences_bit_identical(self, k, seed):
        """Any interleaving of publishes and pulls observes the same
        floats through the extracted board as through the inline one."""
        board, ref, rng = self._pair(k, seed)
        gens = [0, 0, 0]
        for _ in range(200):
            op = rng.integers(0, 3)
            if op == 0:
                s = int(rng.integers(0, 3))
                r0, r1 = self.BOUNDS[s]
                rows = rng.standard_normal((r1 - r0, k))
                gens[s] += 1
                board.publish(s, rows, gens[s])
                ref.publish(s, rows, gens[s])
            elif op == 1:
                halo = np.unique(rng.integers(0, 16, size=6))
                got, _ages = board.pull(halo)
                assert np.array_equal(got, ref.pull(halo))
            else:
                assert np.array_equal(board.snapshot(), ref.snapshot())
        assert np.array_equal(board.snapshot(), ref.snapshot())

    def test_pull_reports_publisher_generation(self):
        board, _, rng = self._pair(1, 1)
        board.publish(1, np.zeros((6, 1)), 4)
        _values, ages = board.pull(np.array([0, 6, 12]))
        # Row 0 owned by shard 0 (never published), row 6 by shard 1
        # (generation 4), row 12 by shard 2 (never published).
        assert list(ages) == [0, 4, 0]
        assert list(board.generations()) == [0, 4, 0]

    def test_snapshot_is_a_copy(self):
        board, _, _ = self._pair(1, 2)
        snap = board.snapshot()
        board.publish(0, np.full((5, 1), 9.0), 1)
        assert not np.array_equal(board.snapshot()[:5], snap[:5])


# ---------------------------------------------------------------------------
# WireHalo against scripted fake clients
# ---------------------------------------------------------------------------


class _FakeClient:
    """A scripted peer: records requests, answers ok, and fails on
    command (``fail_next`` raises once, ``dead`` raises forever)."""

    def __init__(self, address):
        self.address = address
        self.requests: list[dict] = []
        self.fail_next = False
        self.dead = False
        self.closed = False

    def request(self, payload):
        if self.dead or self.fail_next:
            self.fail_next = False
            raise ConnectionError(f"peer {self.address} unreachable")
        self.requests.append(payload)
        return {"ok": True}

    def close(self):
        self.closed = True


def _wire(peers=("p1:1", "p2:2"), k=1, n=10, shard=0):
    bounds = [(0, 4), (4, 10)]
    made = {}

    def factory(addr):
        made[addr] = _FakeClient(addr)
        return made[addr]

    halo = WireHalo(
        np.zeros((n, k)), bounds, shard=shard, peers=list(peers),
        matrix="m", client_factory=factory,
    )
    return halo, made


class TestWireHalo:
    def test_publish_pushes_owned_block_to_every_peer(self):
        halo, made = _wire()
        rows = np.arange(4.0).reshape(4, 1)
        halo.publish(0, rows, 3)
        for addr, client in made.items():
            (req,) = client.requests
            assert req["op"] == "halo_push"
            assert req["matrix"] == "m"
            assert (req["shard"], req["r0"], req["r1"]) == (0, 0, 4)
            assert req["generation"] == 3
            assert req["rows"] == rows.tolist()
            assert halo.pushes[addr] == 1
        values, ages = halo.pull(np.array([1, 5]))
        assert values[0, 0] == 1.0
        assert list(ages) == [3, 0]

    def test_dead_peer_costs_staleness_never_an_epoch(self):
        halo, made = _wire()
        made["p2:2"].dead = True
        for g in range(1, 4):
            halo.publish(0, np.full((4, 1), float(g)), g)
        assert halo.pushes["p1:1"] == 3
        assert halo.push_failures["p2:2"] == 3
        assert halo.pushes["p2:2"] == 0
        # The local mirror still advanced: pulls serve the latest.
        assert halo.pull(np.array([0]))[0][0, 0] == 3.0

    def test_reconnect_counted_when_the_ring_heals(self):
        halo, made = _wire()
        made["p1:1"].fail_next = True
        halo.publish(0, np.zeros((4, 1)), 1)
        assert halo.push_failures["p1:1"] == 1
        halo.publish(0, np.zeros((4, 1)), 2)
        assert halo.reconnects["p1:1"] == 1
        assert halo.pushes["p1:1"] == 1

    def test_receive_applies_and_drops_generation_rewinds(self):
        halo, _ = _wire()
        rows = np.full((6, 1), 2.0)
        assert halo.receive(shard=1, r0=4, r1=10, rows=rows.tolist(), generation=5)
        assert halo.pull(np.array([7]))[0][0, 0] == 2.0
        # A reordered/duplicated delivery carrying an older epoch.
        stale = np.full((6, 1), 9.0)
        assert not halo.receive(
            shard=1, r0=4, r1=10, rows=stale.tolist(), generation=4
        )
        assert halo.stale_drops == 1
        assert halo.pull(np.array([7]))[0][0, 0] == 2.0

    def test_receive_rejects_misshapen_blocks(self):
        halo, _ = _wire()
        with pytest.raises(ModelError, match="shape"):
            halo.receive(shard=1, r0=4, r1=10, rows=[[1.0]], generation=1)

    def test_read_rows_serves_snapshot_and_validates_range(self):
        halo, _ = _wire()
        halo.publish(0, np.full((4, 1), 5.0), 2)
        values, ages = halo.read_rows([0, 3])
        assert values.tolist() == [[5.0], [5.0]]
        assert list(ages) == [2, 2]
        assert halo.pull_serves == 1
        with pytest.raises(ModelError, match="out of range"):
            halo.read_rows([10])

    def test_age_is_own_minus_stalest_foreign(self):
        halo, _ = _wire()
        halo.publish(0, np.zeros((4, 1)), 7)
        assert halo.age() == 7  # peer never pushed
        halo.receive(
            shard=1, r0=4, r1=10, rows=np.zeros((6, 1)).tolist(), generation=5
        )
        assert halo.age() == 2
        halo.receive(
            shard=1, r0=4, r1=10, rows=np.zeros((6, 1)).tolist(), generation=9
        )
        assert halo.age() == 0  # never negative

    def test_counters_snapshot_shape(self):
        halo, made = _wire()
        made["p2:2"].dead = True
        halo.publish(0, np.zeros((4, 1)), 1)
        counters = halo.counters()
        assert counters["pushes"] == {"p1:1": 1, "p2:2": 0}
        assert counters["push_failures"] == {"p1:1": 0, "p2:2": 1}
        assert counters["generation"] == 1
        halo.close()
        assert all(c.closed for c in made.values())


# ---------------------------------------------------------------------------
# NodeShard proxy against a scripted host
# ---------------------------------------------------------------------------


class _FakeHostClient:
    """Scripted shard host: answers begin/advance/stop like a real one,
    optionally failing or rejecting."""

    def __init__(self, address):
        self.address = address
        self.requests: list[dict] = []
        self.dead = False
        self.reject = None

    def request(self, payload):
        if self.dead:
            raise ConnectionError("connection refused")
        self.requests.append(payload)
        if self.reject is not None:
            return {"ok": False, "error": self.reject}
        op = payload["op"]
        if op == "shard_begin":
            return {"ok": True, "spawn_count": 1, "workers": [4242]}
        if op == "shard_advance":
            r0, r1 = 0, 4
            return {
                "ok": True,
                "rows": np.full((r1 - r0, 1), 8.0).tolist(),
                "generation": 1,
                "stats": {
                    "per_worker": [12],
                    "sync_points": 1,
                    "wall_time": 0.5,
                    "column_updates": 12,
                    "total_row_nnz": 30,
                    "delay": {"count": 12, "mean": 1.5, "max": 4},
                },
            }
        return {"ok": True}

    def close(self):
        pass


def _node(client=None):
    client = client if client is not None else _FakeHostClient("h:1")
    shard = NodeShard(
        0, address="h:1", matrix="m", bounds=[(0, 4), (4, 10)],
        shards=2, n=10, nproc=1, capacity_k=1, seed=5,
        params={"beta": 1.0}, client_factory=lambda addr: client,
    )
    return shard, client


class TestNodeShard:
    def test_begin_scatters_the_partition(self):
        shard, client = _node()
        x0 = np.zeros((10, 1))
        b = np.ones((4, 1))
        shard._ensure_pool().begin(x0, b)
        (req,) = client.requests
        assert req["op"] == "shard_begin"
        assert req["matrix"] == "m"
        assert (req["shard"], req["shards"]) == (0, 2)
        assert req["bounds"] == [[0, 4], [4, 10]]
        assert req["seed"] == 5
        assert req["params"] == {"beta": 1.0}
        assert shard.worker_pids() == [4242]
        assert shard.spawn_count == 1
        assert shard.pool_active

    def test_advance_applies_rows_and_caches_stats(self):
        shard, client = _node()
        pool = shard._ensure_pool()
        pool.begin(np.zeros((10, 1)), np.ones((4, 1)))
        pool.retire_columns(np.array([0]))
        pool.advance(40)
        req = client.requests[-1]
        assert req["op"] == "shard_advance"
        assert req["count"] == 40
        assert req["retire"] == [0]  # piggybacked, not a separate verb
        assert pool.x()[0, 0] == 8.0
        assert pool.x()[5, 0] == 0.0  # foreign rows untouched
        assert pool.per_worker() == [12]
        assert pool.sync_points == 1
        assert pool.column_updates() == 12
        assert pool.total_row_nnz() == 30
        assert pool.delay_stats().mean == 1.5

    def test_unreachable_peer_names_the_address(self):
        shard, client = _node()
        client.dead = True
        with pytest.raises(
            ModelError, match=r"peer h:1 \(shard 0 of 2\) is unreachable"
        ):
            shard._ensure_pool().begin(np.zeros((10, 1)), np.ones((4, 1)))

    def test_rejection_names_the_verb(self):
        shard, client = _node()
        client.reject = "wrong matrix"
        with pytest.raises(ModelError, match="rejected 'shard_begin'"):
            shard._ensure_pool().begin(np.zeros((10, 1)), np.ones((4, 1)))

    def test_x_before_begin_is_an_error(self):
        shard, _ = _node()
        with pytest.raises(ModelError, match="before begin"):
            shard._ensure_pool().x()

    def test_close_sends_stop_once(self):
        shard, client = _node()
        shard._ensure_pool().begin(np.zeros((10, 1)), np.ones((4, 1)))
        shard.close()
        assert client.requests[-1]["op"] == "shard_stop"
        assert not shard.pool_active


# ---------------------------------------------------------------------------
# ShardedSolver wiring: nodes validation and the transport seam
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def lap_system():
    A = laplacian_2d(8)
    n = A.shape[0]
    x_star = np.sin(np.linspace(0.0, 2.0 * np.pi, n))
    return A, A.matvec(x_star)


class TestNodesValidation:
    def test_shards_must_match_node_count(self, lap_system):
        A, b = lap_system
        with pytest.raises(ModelError, match="does not match the 2 node"):
            ShardedSolver(A, b, shards=3, nodes=["h:1", "h:2"])

    def test_single_node_is_refused(self, lap_system):
        A, b = lap_system
        with pytest.raises(ModelError, match="nothing to distribute"):
            ShardedSolver(A, b, shards=1, nodes=["h:1"])

    def test_addresses_validated_up_front(self, lap_system):
        A, b = lap_system
        with pytest.raises(ModelError, match="HOST:PORT"):
            ShardedSolver(A, b, shards=2, nodes=["h:1", "no-port"])

    def test_nodes_exclude_shard_factory(self, lap_system):
        A, b = lap_system
        with pytest.raises(ModelError, match="mutually exclusive"):
            ShardedSolver(
                A, b, shards=2, nodes=["h:1", "h:2"],
                shard_factory=lambda *a, **k: None,
            )


class _MirrorTransport(HaloTransport):
    """Drives a LocalBoard and the inline PR 8 reference side by side
    and asserts they agree bit for bit on every pull and snapshot.

    Free-running shard drivers make two *separate* solves incomparable
    (the interleaving is the randomness — by design), so the
    behavior-preserving claim is checked the only honest way: one real
    schedule, both boards, byte equality at every observation point.
    """

    instances: list["_MirrorTransport"] = []

    def __init__(self, x0, bounds):
        self.board = LocalBoard(x0, bounds)
        self.ref = _ReferenceBoard(x0, bounds)
        self.observations = 0
        self._lock = threading.Lock()
        _MirrorTransport.instances.append(self)

    def publish(self, shard, rows, generation):
        # One mutex around the pair so both boards always see publishes
        # in the same order; each pull compares a locked joint read.
        with self._lock:
            self.board.publish(shard, rows, generation)
            self.ref.publish(shard, rows, generation)

    def pull(self, halo_rows):
        with self._lock:
            values, ages = self.board.pull(halo_rows)
            assert np.array_equal(values, self.ref.pull(halo_rows))
            self.observations += 1
        return values, ages

    def snapshot(self):
        with self._lock:
            snap = self.board.snapshot()
            assert np.array_equal(snap, self.ref.snapshot())
            self.observations += 1
        return snap


@pytest.mark.multiprocess
class TestTransportSeamBitIdentity:
    @pytest.mark.parametrize("shards,seed", [(3, 5), (2, 0)])
    def test_localboard_matches_inline_reference_end_to_end(
        self, lap_system, shards, seed
    ):
        """The refactor's behavior-preserving claim on real nproc=1
        pools (seeds from test_sharded.py's TestRealPools): every halo
        pull and every residual snapshot of a shards=N solve observes
        identical bits through the extracted LocalBoard and through
        the inline pre-seam board."""
        _MirrorTransport.instances.clear()
        A, b = lap_system
        result = ShardedSolver(
            A, b, shards=shards, nproc=1, seed=seed,
            transport_factory=_MirrorTransport,
        ).solve(1e-8, 20000, sync_every_sweeps=2)
        assert result.converged
        (mirror,) = _MirrorTransport.instances
        assert mirror.observations > shards  # pulls ran, not just finals
        # The final iterate is exactly the board's last snapshot.
        assert np.array_equal(result.x, mirror.board.snapshot()[:, 0])
