"""Unit tests for execution traces and replay."""

import numpy as np
import pytest

from repro.execution import (
    AsyncSimulator,
    ExecutionTrace,
    FixedDelay,
    LossyWrites,
    UniformDelay,
    replay_trace,
)
from repro.rng import DirectionStream
from repro.workloads import random_unit_diagonal_spd

from ..conftest import manufactured_system


class TestTraceBasics:
    def test_append_and_views(self):
        t = ExecutionTrace()
        t.append(3, 1, 0.5)
        t.append(7, 0, -0.25, lost=True)
        assert len(t) == 2
        np.testing.assert_array_equal(t.coords, [3, 7])
        np.testing.assert_array_equal(t.missed_counts, [1, 0])
        np.testing.assert_array_equal(t.gammas, [0.5, -0.25])
        np.testing.assert_array_equal(t.lost_writes, [False, True])

    def test_growth(self):
        t = ExecutionTrace()
        for i in range(5000):
            t.append(i % 7, 0, float(i))
        assert len(t) == 5000
        assert t.gammas[-1] == 4999.0

    def test_mark_lost(self):
        t = ExecutionTrace()
        t.append(0, 0, 1.0)
        t.mark_lost(0)
        assert t.lost_writes[0]

    def test_mark_lost_out_of_range(self):
        t = ExecutionTrace()
        with pytest.raises(IndexError):
            t.mark_lost(0)

    def test_delay_histogram(self):
        t = ExecutionTrace()
        for lag in (0, 0, 1, 2, 2, 2):
            t.append(0, lag, 0.0)
        assert t.delay_histogram() == {0: 2, 1: 1, 2: 3}

    def test_coordinate_touch_counts(self):
        t = ExecutionTrace()
        for c in (1, 1, 3):
            t.append(c, 0, 0.0)
        np.testing.assert_array_equal(t.coordinate_touch_counts(5), [0, 2, 0, 1, 0])


class TestReplay:
    @pytest.fixture(scope="class")
    def system(self):
        A = random_unit_diagonal_spd(25, nnz_per_row=4, offdiag_scale=0.6, seed=15)
        b, _ = manufactured_system(A, seed=16)
        return A, b

    def test_replay_reproduces_final_iterate(self, system):
        A, b = system
        n = A.shape[0]
        sim = AsyncSimulator(
            A, b, delay_model=UniformDelay(5, seed=2),
            directions=DirectionStream(n, seed=3), record_trace=True,
        )
        out = sim.run(np.zeros(n), 500)
        replayed = replay_trace(out.trace, np.zeros(n))
        np.testing.assert_array_equal(replayed, out.x)

    def test_replay_with_lost_writes(self, system):
        A, b = system
        n = A.shape[0]
        sim = AsyncSimulator(
            A, b, delay_model=FixedDelay(6),
            directions=DirectionStream(n, seed=3),
            write_model=LossyWrites(loss_prob=0.8, seed=4),
            record_trace=True,
        )
        out = sim.run(np.zeros(n), 800)
        assert out.lost_writes > 0
        replayed = replay_trace(out.trace, np.zeros(n))
        np.testing.assert_allclose(replayed, out.x, rtol=1e-12, atol=1e-14)

    def test_replay_respects_beta(self, system):
        A, b = system
        n = A.shape[0]
        sim = AsyncSimulator(
            A, b, delay_model=UniformDelay(3, seed=5), beta=0.7,
            directions=DirectionStream(n, seed=6), record_trace=True,
        )
        out = sim.run(np.zeros(n), 300)
        replayed = replay_trace(out.trace, np.zeros(n), beta=0.7)
        np.testing.assert_allclose(replayed, out.x, rtol=1e-12, atol=1e-14)

    def test_replay_nonzero_start(self, system):
        A, b = system
        n = A.shape[0]
        x0 = np.linspace(-1, 1, n)
        sim = AsyncSimulator(
            A, b, delay_model=UniformDelay(3, seed=7),
            directions=DirectionStream(n, seed=8), record_trace=True,
        )
        out = sim.run(x0, 200)
        replayed = replay_trace(out.trace, x0)
        np.testing.assert_allclose(replayed, out.x, rtol=1e-12, atol=1e-14)
