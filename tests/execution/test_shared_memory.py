"""Unit tests for write models and the shared vector."""

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.execution import AtomicWrites, LossyWrites, SharedVector


class TestAtomicWrites:
    def test_never_loses(self):
        m = AtomicWrites()
        assert not any(m.lost(j, t) for j in range(50) for t in range(j))


class TestLossyWrites:
    def test_deterministic(self):
        m1 = LossyWrites(loss_prob=0.5, seed=9)
        m2 = LossyWrites(loss_prob=0.5, seed=9)
        pairs = [(j, t) for j in range(40) for t in range(max(0, j - 5), j)]
        assert [m1.lost(j, t) for j, t in pairs] == [m2.lost(j, t) for j, t in pairs]

    def test_distinct_pairs_distinct_positions(self):
        """(j, t) and (t, j)-style collisions must not alias (Cantor
        pairing is injective)."""
        m = LossyWrites(loss_prob=0.5, seed=3)
        outcomes = {}
        for j in range(60):
            for t in range(max(0, j - 6), j):
                outcomes[(j, t)] = m.lost(j, t)
        # Frequency should be near loss_prob.
        vals = list(outcomes.values())
        freq = sum(vals) / len(vals)
        assert 0.3 < freq < 0.7

    def test_prob_zero_and_one(self):
        assert not LossyWrites(loss_prob=0.0).lost(5, 3)
        assert LossyWrites(loss_prob=1.0).lost(5, 3)

    def test_invalid_prob(self):
        with pytest.raises(ModelError):
            LossyWrites(loss_prob=-0.1)
        with pytest.raises(ModelError):
            LossyWrites(loss_prob=1.5)

    def test_repr(self):
        assert "0.25" in repr(LossyWrites(loss_prob=0.25))


class TestSharedVector:
    def test_add_and_snapshot(self):
        v = SharedVector(np.zeros(4))
        v.add(2, 1.5)
        v.add(2, 0.5)
        np.testing.assert_array_equal(v.snapshot(), [0, 0, 2.0, 0])
        assert v.update_count == 2

    def test_snapshot_is_a_copy(self):
        v = SharedVector(np.zeros(2))
        snap = v.snapshot()
        v.add(0, 1.0)
        assert snap[0] == 0.0

    def test_view_is_live(self):
        v = SharedVector(np.zeros(2))
        live = v.view()
        v.add(1, 3.0)
        assert live[1] == 3.0

    def test_gather(self):
        v = SharedVector(np.array([1.0, 2.0, 3.0]))
        np.testing.assert_array_equal(v.gather(np.array([2, 0])), [3.0, 1.0])

    def test_atomic_flag(self):
        assert SharedVector(np.zeros(1), atomic=True).atomic
        assert not SharedVector(np.zeros(1), atomic=False).atomic

    def test_initial_values_copied(self):
        src = np.ones(3)
        v = SharedVector(src)
        src[0] = 99.0
        assert v.snapshot()[0] == 1.0

    def test_block_iterate_row_updates(self):
        """A (n, k) block iterate commits whole rows per update — the
        multi-RHS convention shared with the multiprocess backend."""
        v = SharedVector(np.zeros((3, 2)))
        v.add(1, np.array([0.5, -0.5]))
        v.add(1, np.array([0.5, -0.5]))
        np.testing.assert_array_equal(v.view()[1], [1.0, -1.0])
        assert v.update_count == 2
        rows = v.gather(np.array([1, 0]))
        assert rows.shape == (2, 2)
        np.testing.assert_array_equal(rows[0], [1.0, -1.0])
