"""Tests for the true shared-memory multiprocess backend.

Everything here must hold on any machine, including single-CPU boxes
(processes still exist and race there — they just don't speed up); the
one genuinely hardware-conditional check skips itself when fewer than
two CPUs are available.
"""

import numpy as np
import pytest

from repro.core import AsyRGS, randomized_gauss_seidel
from repro.exceptions import ModelError, ShapeError
from repro.execution import ProcessAsyRGS, available_cpus
from repro.rng import DirectionStream
from repro.sparse import CSRMatrix
from repro.workloads import laplacian_2d, random_unit_diagonal_spd, social_media_problem

from ..conftest import manufactured_system

pytestmark = pytest.mark.multiprocess


@pytest.fixture(scope="module")
def system():
    A = random_unit_diagonal_spd(30, nnz_per_row=4, offdiag_scale=0.6, seed=8)
    b, x_star = manufactured_system(A, seed=9)
    return A, b, x_star


@pytest.fixture(scope="module")
def block_system(system):
    """The module system extended to a 4-column RHS block."""
    A, b, _ = system
    n = A.shape[0]
    rng = DirectionStream(n, seed=44)
    X_star = np.column_stack(
        [rng.directions(j * n, n).astype(np.float64) / n - 0.5 for j in range(4)]
    )
    return A, A.matmat(X_star), X_star


@pytest.fixture(scope="module")
def laplace_system():
    A = laplacian_2d(12, 12)
    n = A.shape[0]
    x_star = np.sin(np.linspace(0.0, 2.0 * np.pi, n))
    return A, A.matvec(x_star), x_star


def identity_csr(n: int) -> CSRMatrix:
    return CSRMatrix(
        (n, n),
        indptr=np.arange(n + 1, dtype=np.int64),
        indices=np.arange(n, dtype=np.int64),
        data=np.ones(n),
    )


class TestSingleProcess:
    def test_one_process_matches_serial_rgs(self, system):
        """With one worker there is no concurrency: the run must equal
        sequential randomized Gauss-Seidel on the same stream."""
        A, b, _ = system
        n = A.shape[0]
        ref = randomized_gauss_seidel(
            A, b, sweeps=5, directions=DirectionStream(n, seed=3), record_history=False
        )
        p = ProcessAsyRGS(A, b, nproc=1, directions=DirectionStream(n, seed=3))
        out = p.run(np.zeros(n), 5 * n)
        np.testing.assert_allclose(out.x, ref.x, rtol=1e-12, atol=1e-14)
        assert out.iterations == 5 * n
        assert out.tau_observed.max == 0  # no foreign commits exist

    def test_zero_iterations(self, system):
        A, b, _ = system
        out = ProcessAsyRGS(A, b, nproc=2).run(None, 0)
        assert out.iterations == 0
        np.testing.assert_array_equal(out.x, np.zeros(A.shape[0]))


class TestDirectionStreams:
    @pytest.mark.parametrize("nproc", [2, 3])
    def test_union_equals_serial_prefix(self, nproc):
        """On the identity matrix every update writes x[r] = b[r], so the
        set of touched coordinates reveals exactly which directions the
        workers consumed — it must equal the serial stream's prefix (the
        paper's Random123 property, verified end-to-end through real
        processes). The prefix length is chosen so its coordinates are
        pairwise distinct (guarded below): each coordinate then has
        exactly one writer and the check is race-free — with duplicate
        draws, two workers racing the x[r] += (b[r] − x[r]) read-modify-
        write on one coordinate can leave 2·b[r] behind (legitimate
        non-atomic noise, but a flaky exact-value assert under heavy
        scheduling pressure)."""
        n, m = 40, 14
        serial = DirectionStream(n, seed=0).directions(0, m)
        assert len(set(int(r) for r in serial)) == m  # distinct ⇒ no races
        A = identity_csr(n)
        b = np.arange(1.0, n + 1.0)  # all nonzero
        directions = DirectionStream(n, seed=0)
        out = ProcessAsyRGS(A, b, nproc=nproc, directions=directions).run(None, m)
        touched = set(np.flatnonzero(out.x != 0.0))
        expected = set(int(r) for r in serial)
        assert touched == expected
        np.testing.assert_allclose(out.x[sorted(touched)], b[sorted(touched)])

    def test_matches_threaded_backend_streams(self, system):
        """Process and threaded backends split one stream the same way:
        identical per-worker shares for identical (total, P)."""
        from repro.rng import interleave_counts

        A, b, _ = system
        total = 157
        out = ProcessAsyRGS(A, b, nproc=3).run(None, total)
        np.testing.assert_array_equal(
            out.per_worker_iterations, interleave_counts(total, 3)
        )


class TestConvergence:
    @pytest.mark.parametrize("nproc", [2, 4])
    def test_converges_unitdiag(self, system, nproc):
        A, b, x_star = system
        res = ProcessAsyRGS(A, b, nproc=nproc).solve(
            tol=1e-8, max_sweeps=400, sync_every_sweeps=10
        )
        assert res.converged
        assert np.abs(res.x - x_star).max() < 1e-5

    def test_converges_laplacian(self, laplace_system):
        A, b, x_star = laplace_system
        res = ProcessAsyRGS(A, b, nproc=2).solve(
            tol=1e-7, max_sweeps=2000, sync_every_sweeps=25
        )
        assert res.converged
        assert np.abs(res.x - x_star).max() < 1e-4

    def test_atomic_mode_converges(self, system):
        A, b, x_star = system
        res = ProcessAsyRGS(A, b, nproc=2, atomic=True).solve(
            tol=1e-8, max_sweeps=400, sync_every_sweeps=10
        )
        assert res.converged
        assert res.atomic

    def test_spawn_start_method(self, system):
        A, b, _ = system
        res = ProcessAsyRGS(A, b, nproc=2, start_method="spawn").solve(
            tol=1e-6, max_sweeps=200, sync_every_sweeps=20
        )
        assert res.converged


class TestEpochs:
    def test_sync_points_follow_epoch_schedule(self, system):
        """tol=0 never converges: the solver must run exactly max_sweeps
        and synchronize once per sync_every_sweeps epoch."""
        A, b, _ = system
        n = A.shape[0]
        res = ProcessAsyRGS(A, b, nproc=2).solve(
            tol=0.0, max_sweeps=20, sync_every_sweeps=7
        )
        assert not res.converged
        assert res.iterations == 20 * n
        assert res.sync_points == 3  # epochs of 7, 7, 6 sweeps
        # One checkpoint per sync point plus the initial metric.
        assert len(res.checkpoints) == 4
        assert res.checkpoints[-1][0] == 20 * n

    def test_checkpoints_decrease(self, system):
        A, b, _ = system
        res = ProcessAsyRGS(A, b, nproc=2).solve(
            tol=1e-8, max_sweeps=400, sync_every_sweeps=10
        )
        values = [v for _, v in res.checkpoints]
        assert values[-1] < values[0] * 1e-4

    def test_immediate_convergence_spawns_nothing(self, system):
        A, b, x_star = system
        res = ProcessAsyRGS(A, b, nproc=2).solve(
            tol=1.0, max_sweeps=100, x0=x_star
        )
        assert res.converged
        assert res.iterations == 0
        assert res.sync_points == 0


class TestDelayMeasurement:
    def test_write_log_accounts_every_update(self, system):
        A, b, _ = system
        n = A.shape[0]
        res = ProcessAsyRGS(A, b, nproc=2).solve(
            tol=0.0, max_sweeps=10, sync_every_sweeps=10
        )
        stats = res.tau_observed
        assert stats.count == res.iterations == 10 * n
        assert stats.max >= 0
        assert stats.mean >= 0.0
        assert stats.samples.size == min(stats.count, 2 * 4096)
        assert stats.tau_observed == stats.max

    def test_log_capacity_bounds_samples(self, system):
        A, b, _ = system
        res = ProcessAsyRGS(A, b, nproc=2, log_capacity=16).solve(
            tol=0.0, max_sweeps=5, sync_every_sweeps=5
        )
        assert res.tau_observed.samples.size == 32  # 16 per worker
        assert res.tau_observed.count == res.iterations  # aggregate stays exact

    def test_total_row_nnz_exact(self, system):
        """The budget is direction-pinned, so Σ nnz(row) is reproducible
        from the stream regardless of races."""
        A, b, _ = system
        n = A.shape[0]
        m = 3 * n
        out = ProcessAsyRGS(A, b, nproc=2).run(None, m)
        rows = DirectionStream(n, seed=0).directions(0, m)
        expected = int((A.indptr[rows + 1] - A.indptr[rows]).sum())
        assert out.total_row_nnz == expected


class TestBlockRHS:
    def test_block_equals_per_column_serial(self, block_system):
        """With one worker the execution is deterministic, so the block
        run must reproduce k independent single-RHS runs on the same
        direction stream (each column is an independent system; only the
        amortized row gather is shared)."""
        A, B, _ = block_system
        n, k = B.shape
        blk = ProcessAsyRGS(
            A, B, nproc=1, directions=DirectionStream(n, seed=3)
        ).run(None, 6 * n)
        assert blk.x.shape == (n, k)
        for j in range(k):
            col = ProcessAsyRGS(
                A, B[:, j], nproc=1, directions=DirectionStream(n, seed=3)
            ).run(None, 6 * n)
            np.testing.assert_allclose(blk.x[:, j], col.x, rtol=1e-9, atol=1e-12)

    @pytest.mark.parametrize("nproc", [2, 3])
    def test_block_converges_multiproc(self, block_system, nproc):
        A, B, X_star = block_system
        res = ProcessAsyRGS(A, B, nproc=nproc).solve(
            tol=1e-8, max_sweeps=400, sync_every_sweeps=10
        )
        assert res.converged
        assert res.x.shape == B.shape
        assert np.abs(res.x - X_star).max() < 1e-5

    def test_block_accounting_counts_row_updates_once(self, block_system, system):
        """A block update of all k columns is one commit: iterations,
        write-log counts, and Σ nnz(row) must match the single-RHS run
        on the same stream."""
        A, B, _ = block_system
        _, b, _ = system
        n = A.shape[0]
        m = 3 * n
        blk = ProcessAsyRGS(A, B, nproc=2).run(None, m)
        single = ProcessAsyRGS(A, b, nproc=2).run(None, m)
        assert blk.iterations == single.iterations == m
        assert blk.total_row_nnz == single.total_row_nnz
        assert blk.tau_observed.count == m

    def test_block_atomic_mode(self, block_system):
        A, B, X_star = block_system
        res = ProcessAsyRGS(A, B, nproc=2, atomic=True).solve(
            tol=1e-8, max_sweeps=400, sync_every_sweeps=10
        )
        assert res.converged
        assert res.atomic

    def test_zero_column_block_rejected(self, system):
        A, b, _ = system
        with pytest.raises(ShapeError):
            ProcessAsyRGS(A, np.empty((A.shape[0], 0)), nproc=2)

    def test_three_dim_b_rejected(self, system):
        A, b, _ = system
        with pytest.raises(ShapeError):
            ProcessAsyRGS(A, np.zeros((A.shape[0], 2, 2)), nproc=2)

    def test_fifty_one_label_social_block(self):
        """The paper's headline regime end to end: a social-media Gram
        system with a 51-column label block, solved simultaneously; at
        nproc=1 every column must match its own single-RHS solve."""
        prob = social_media_problem(n_terms=40, n_docs=150, n_labels=51, seed=5)
        A, B = prob.G, prob.B
        n, k = B.shape
        assert k == 51
        blk = ProcessAsyRGS(
            A, B, nproc=1, directions=DirectionStream(n, seed=7)
        ).run(None, 8 * n)
        for j in (0, 17, 50):  # spot-check columns across the block
            col = ProcessAsyRGS(
                A, B[:, j], nproc=1, directions=DirectionStream(n, seed=7)
            ).run(None, 8 * n)
            np.testing.assert_allclose(blk.x[:, j], col.x, rtol=1e-9, atol=1e-12)
        # And the block converges under real concurrency (the Gram
        # matrix is ill-conditioned by construction, so the tolerance
        # is modest to keep the test fast).
        res = AsyRGS(A, B, nproc=2, engine="processes").solve(
            tol=1e-4, max_sweeps=2000, sync_every_sweeps=50
        )
        assert res.converged


class TestColumnRetirement:
    def test_retired_column_is_bit_frozen(self, block_system):
        """nproc=1 is deterministic: a column whose x0 is exact retires
        before the first epoch and its shared slot is never written."""
        A, B, X_star = block_system
        n, k = B.shape
        x0 = np.zeros((n, k))
        x0[:, 2] = X_star[:, 2]
        res = ProcessAsyRGS(
            A, B, nproc=1, directions=DirectionStream(n, seed=3)
        ).solve(tol=1e-10, max_sweeps=300, x0=x0, sync_every_sweeps=10)
        assert res.converged
        assert res.column_sweeps[2] == 0
        np.testing.assert_array_equal(res.x[:, 2], X_star[:, 2])
        assert (res.column_residuals < 1e-10).all()

    def test_column_update_accounting(self, block_system):
        """Exact work accounting at nproc=1: column j is refreshed n
        times per epoch until its retirement epoch, never after; without
        retirement every commit refreshes all k columns."""
        A, B, _ = block_system
        n, k = B.shape
        res = ProcessAsyRGS(
            A, B, nproc=1, directions=DirectionStream(n, seed=3)
        ).solve(tol=1e-8, max_sweeps=300, sync_every_sweeps=5)
        assert res.converged
        expected = n * int(
            sum(cs if cs >= 0 else res.sweeps_done for cs in res.column_sweeps)
        )
        assert res.column_updates == expected
        full = ProcessAsyRGS(
            A, B, nproc=1, directions=DirectionStream(n, seed=3)
        ).solve(tol=1e-8, max_sweeps=300, sync_every_sweeps=5, retire=False)
        assert full.converged
        assert full.column_updates == full.iterations * k

    @pytest.mark.parametrize("nproc", [2, 3])
    def test_retirement_under_real_concurrency(self, block_system, nproc):
        A, B, X_star = block_system
        res = ProcessAsyRGS(A, B, nproc=nproc).solve(
            tol=1e-8, max_sweeps=400, sync_every_sweeps=10
        )
        assert res.converged
        assert res.converged_columns.all()
        assert (res.column_residuals < 1e-8).all()
        assert np.abs(res.x - X_star).max() < 1e-5

    def test_skewed_block_saves_updates(self):
        """The 51-label social workload has skewed label difficulty, so
        retirement must shrink the active set well before the slowest
        label and save a measurable share of the column updates."""
        A_B = social_media_problem(n_terms=60, n_docs=250, n_labels=12, seed=5)
        A, B = A_B.G, A_B.B
        kwargs = dict(tol=1e-3, max_sweeps=600, sync_every_sweeps=10)
        ret = ProcessAsyRGS(A, B, nproc=2).solve(**kwargs)
        full = ProcessAsyRGS(A, B, nproc=2).solve(**kwargs, retire=False)
        assert ret.converged and full.converged
        assert ret.column_updates < full.column_updates
        # Every retired column honored the tolerance at the final sync.
        assert (ret.column_residuals < 1e-3).all()
        retired = ret.column_sweeps[ret.column_sweeps >= 0]
        assert retired.min() < retired.max()  # genuinely skewed difficulty

    def test_custom_metric_keeps_aggregate_path(self, block_system):
        from repro.core.residuals import relative_residual

        A, B, _ = block_system
        res = ProcessAsyRGS(A, B, nproc=2).solve(
            tol=1e-6, max_sweeps=300, sync_every_sweeps=10,
            metric=lambda xv: relative_residual(A, xv, B),
        )
        assert res.converged
        assert res.converged_columns is None

    def test_retire_with_custom_metric_rejected(self, block_system):
        A, B, _ = block_system
        with pytest.raises(ModelError, match="per-column"):
            ProcessAsyRGS(A, B, nproc=2).solve(
                tol=1e-6, max_sweeps=10, retire=True,
                metric=lambda xv: float(np.linalg.norm(xv)),
            )

    def test_pool_reuse_resets_active_mask(self, block_system):
        """A solve that retired columns must not leak its mask into the
        next call on the same pool: the second solve re-activates every
        column and reproduces the first bit for bit (nproc=1)."""
        A, B, _ = block_system
        with ProcessAsyRGS(
            A, B, nproc=1, directions=DirectionStream(A.shape[0], seed=3)
        ) as solver:
            r1 = solver.solve(tol=1e-8, max_sweeps=300, sync_every_sweeps=10)
            r2 = solver.solve(tol=1e-8, max_sweeps=300, sync_every_sweeps=10)
            assert solver.spawn_count == 1
        assert r1.converged and r2.converged
        np.testing.assert_array_equal(r1.x, r2.x)
        np.testing.assert_array_equal(r1.column_sweeps, r2.column_sweeps)
        assert r1.column_updates == r2.column_updates


class TestPersistentPool:
    def test_reused_pool_matches_oneshot_exactly(self, block_system):
        """nproc=1 is deterministic: two solves on one pool must equal
        two one-shot solves bit for bit, with one spawn and one CSR copy."""
        A, B, _ = block_system
        with ProcessAsyRGS(A, B, nproc=1) as solver:
            assert solver.pool_active
            r1 = solver.solve(tol=1e-10, max_sweeps=200, sync_every_sweeps=10)
            r2 = solver.solve(tol=1e-10, max_sweeps=200, sync_every_sweeps=10)
            assert solver.spawn_count == 1
            assert solver.csr_copies == 1
        assert not solver.pool_active
        one = ProcessAsyRGS(A, B, nproc=1).solve(
            tol=1e-10, max_sweeps=200, sync_every_sweeps=10
        )
        np.testing.assert_array_equal(r1.x, one.x)
        np.testing.assert_array_equal(r1.x, r2.x)
        assert r1.iterations == r2.iterations == one.iterations
        assert r1.sweeps_done == one.sweeps_done

    def test_workers_survive_group_delivered_signals(self, system):
        """A terminal ^C or a supervisor's TERM hits the whole process
        group, workers included. Workers must shrug it off — their
        lifecycle belongs to the parent's control word; a signal dying
        inside barrier.wait() would skip the barrier abort and leave
        the parent burning its full barrier_timeout on a dead gate
        (`repro serve` under coreutils `timeout` hit exactly this)."""
        import os
        import signal as signal_module
        import time

        A, b, x_star = system
        with ProcessAsyRGS(A, b, nproc=2) as solver:
            pids = solver.worker_pids()
            r1 = solver.solve(tol=1e-8, max_sweeps=400, sync_every_sweeps=10)
            for pid in pids:
                os.kill(pid, signal_module.SIGTERM)
                os.kill(pid, signal_module.SIGINT)
            time.sleep(0.2)  # give a (wrongly) dying worker time to die
            assert solver.worker_pids() == pids
            r2 = solver.solve(tol=1e-8, max_sweeps=400, sync_every_sweeps=10)
            assert solver.spawn_count == 1
        assert r1.converged and r2.converged
        assert np.abs(r2.x - x_star).max() < 1e-5

    def test_workers_spawned_once_across_solves(self, system):
        A, b, x_star = system
        with ProcessAsyRGS(A, b, nproc=2) as solver:
            pids_before = solver.worker_pids()
            assert len(pids_before) == 2
            r1 = solver.solve(tol=1e-8, max_sweeps=400, sync_every_sweeps=10)
            r2 = solver.solve(tol=1e-8, max_sweeps=400, sync_every_sweeps=10)
            assert solver.worker_pids() == pids_before
            assert solver.spawn_count == 1
            assert solver.csr_copies == 1
        assert r1.converged and r2.converged
        assert np.abs(r1.x - x_star).max() < 1e-5
        assert np.abs(r2.x - x_star).max() < 1e-5

    def test_pool_serves_new_rhs_without_respawn(self, system):
        """The serving regime: same A, a different b per request."""
        A, b, x_star = system
        b2 = A.matvec(2.0 * x_star)
        with ProcessAsyRGS(A, b, nproc=2) as solver:
            r1 = solver.solve(tol=1e-8, max_sweeps=400, sync_every_sweeps=10)
            r2 = solver.solve(tol=1e-8, max_sweeps=400, sync_every_sweeps=10, b=b2)
            assert solver.spawn_count == 1
        assert r1.converged and r2.converged
        assert np.abs(r1.x - x_star).max() < 1e-5
        assert np.abs(r2.x - 2.0 * x_star).max() < 1e-5

    def test_rhs_override_shape_checked(self, system):
        A, b, _ = system
        with ProcessAsyRGS(A, b, nproc=2) as solver:
            with pytest.raises(ShapeError):
                solver.run(None, 10, b=np.stack([b, b], axis=1))

    def test_run_reuses_pool_too(self, system):
        A, b, _ = system
        n = A.shape[0]
        with ProcessAsyRGS(A, b, nproc=2) as solver:
            out0 = solver.run(None, 0)
            out1 = solver.run(None, 2 * n)
            out2 = solver.run(None, 2 * n)
            assert solver.spawn_count == 1
        assert out0.iterations == 0
        assert out1.iterations == out2.iterations == 2 * n

    def test_oneshot_spawns_per_call(self, system):
        """Outside a ``with`` block the original lifecycle is preserved:
        every call pays its own pool."""
        A, b, _ = system
        backend = ProcessAsyRGS(A, b, nproc=2)
        backend.run(None, 10)
        backend.run(None, 10)
        assert backend.spawn_count == 2
        assert backend.csr_copies == 2
        assert not backend.pool_active

    def test_close_is_idempotent(self, system):
        A, b, _ = system
        solver = ProcessAsyRGS(A, b, nproc=2)
        with solver:
            solver.solve(tol=1e-6, max_sweeps=100, sync_every_sweeps=20)
        solver.close()
        solver.close()
        assert not solver.pool_active
        # A closed solver still serves one-shot calls.
        out = solver.run(None, 10)
        assert out.iterations == 10


@pytest.mark.skipif(
    available_cpus() < 2,
    reason="needs ≥ 2 CPUs to observe genuine parallel overlap",
)
class TestRealParallelism:
    def test_two_processes_overlap(self, laplace_system):
        """With two real cores, two workers must commit concurrently at
        least once (some update sees a foreign commit mid-flight)."""
        A, b, _ = laplace_system
        out = ProcessAsyRGS(A, b, nproc=2).run(None, 50 * A.shape[0])
        assert out.tau_observed.max > 0


class TestAsyRGSFacade:
    def test_solve_via_engine(self, laplace_system):
        A, b, x_star = laplace_system
        solver = AsyRGS(A, b, nproc=2, engine="processes")
        res = solver.solve(tol=1e-6, max_sweeps=1500, sync_every_sweeps=25)
        assert res.converged
        assert res.tau_observed is not None
        assert res.wall_time > 0
        assert res.history.final < 1e-6
        assert np.abs(res.x - x_star).max() < 1e-4

    def test_run_sweeps_via_engine(self, system):
        A, b, _ = system
        solver = AsyRGS(A, b, nproc=2, engine="processes")
        res = solver.run_sweeps(5)
        assert res.iterations == 5 * A.shape[0]
        assert res.sync_points == 0
        assert res.tau_observed is not None

    def test_block_solve_via_engine(self, block_system):
        A, B, X_star = block_system
        solver = AsyRGS(A, B, nproc=2, engine="processes")
        res = solver.solve(tol=1e-8, max_sweeps=400, sync_every_sweeps=10)
        assert res.converged
        assert res.x.shape == B.shape
        assert np.abs(res.x - X_star).max() < 1e-5
        assert res.history.final < 1e-8

    def test_sweeps_accounting_matches_simulated(self, system):
        """Regression: every engine reports the same sweep quantity —
        epochs of n updates actually executed (tol=0 pins it to
        max_sweeps on both paths)."""
        A, b, _ = system
        kwargs = dict(tol=0.0, max_sweeps=13, sync_every_sweeps=5)
        res_p = AsyRGS(A, b, nproc=2, engine="processes").solve(**kwargs)
        res_s = AsyRGS(A, b, nproc=2, engine="phased").solve(**kwargs)
        assert res_p.sweeps == res_s.sweeps == 13
        assert res_p.iterations == 13 * A.shape[0]
        # Immediate convergence reports zero sweeps on both paths too.
        res_p0 = AsyRGS(A, b, nproc=2, engine="processes").solve(
            tol=np.inf, max_sweeps=10
        )
        res_s0 = AsyRGS(A, b, nproc=2, engine="phased").solve(
            tol=np.inf, max_sweeps=10
        )
        assert res_p0.sweeps == res_s0.sweeps == 0

    def test_auto_beta(self, system):
        A, b, _ = system
        solver = AsyRGS(A, b, nproc=2, engine="processes", beta="auto")
        assert 0.0 < solver.beta < 2.0
        assert solver.tau == 1  # nominal τ = P − 1

    def test_seed_keys_default_directions(self, system):
        """The processes engine consumes no other randomness, so the
        facade's seed keys its default stream (unlike the simulated
        engines, whose default stays pinned at 0 across configurations)."""
        A, b, _ = system
        assert AsyRGS(A, b, nproc=2, engine="processes", seed=5).directions.seed == 5
        assert AsyRGS(A, b, nproc=2, engine="phased", seed=5).directions.seed == 0

    def test_atomic_default_matches_backend(self, system):
        """atomic=None resolves to the engine's native regime: unlocked
        for real processes (the Section 9 non-atomic experiment, same as
        the speedup bench), locked for the simulated engines."""
        A, b, _ = system
        assert AsyRGS(A, b, nproc=2, engine="processes")._sim.atomic is False
        assert AsyRGS(A, b, nproc=2, engine="processes", atomic=True)._sim.atomic is True

    def test_start_iteration_rejected(self, system):
        A, b, _ = system
        solver = AsyRGS(A, b, nproc=2, engine="processes")
        with pytest.raises(ModelError):
            solver.run_sweeps(1, start_iteration=30)

    def test_jitter_rejected(self, system):
        A, b, _ = system
        with pytest.raises(ModelError):
            AsyRGS(A, b, nproc=2, engine="processes", jitter=3)

    def test_delay_model_rejected(self, system):
        from repro.execution import UniformDelay

        A, b, _ = system
        with pytest.raises(ModelError):
            AsyRGS(A, b, nproc=2, engine="processes",
                   delay_model=UniformDelay(4, seed=1))


class TestCapacityLayouts:
    """The capacity-k pool layout: one live pool serves any request
    width ``k ≤ capacity_k`` without a respawn."""

    def test_changed_k_reuses_pool_without_respawn(self, block_system):
        """CONTRACT CHANGE (PR 4): before capacity-k layouts, a per-call
        ``b=`` of a different width against an open pool raised
        ShapeError ("this pool's layout is fixed"); the pool could only
        be escaped by building a new solver. With the layout allocated
        at ``capacity_k``, a narrower request now *reuses* the live
        pool — no respawn, no CSR re-copy, stable worker PIDs."""
        A, B, _ = block_system
        n, k = B.shape
        with ProcessAsyRGS(A, B, nproc=2, capacity_k=k) as solver:
            pids = solver.worker_pids()
            r_block = solver.solve(tol=1e-8, max_sweeps=400, sync_every_sweeps=10)
            r_one = solver.solve(
                tol=1e-8, max_sweeps=400, sync_every_sweeps=10, b=B[:, 0]
            )
            r_two = solver.solve(
                tol=1e-8, max_sweeps=400, sync_every_sweeps=10, b=B[:, :2]
            )
            assert solver.spawn_count == 1
            assert solver.csr_copies == 1
            assert solver.worker_pids() == pids
        assert r_block.converged and r_one.converged and r_two.converged
        assert r_block.x.shape == (n, k)
        assert r_one.x.shape == (n,)
        assert r_two.x.shape == (n, 2)

    def test_request_wider_than_capacity_still_raises(self, block_system):
        """The unreusable direction keeps the old contract: a request
        wider than the layout cannot be served without a respawn, so it
        raises (with the shared capacity wording) instead of growing
        the segment silently."""
        A, B, _ = block_system
        with ProcessAsyRGS(A, B[:, 0], nproc=2, capacity_k=2) as solver:
            with pytest.raises(ShapeError, match="layout capacity"):
                solver.run(None, 10, b=B[:, :3])
            # The failed validation must not have hurt the pool.
            assert solver.pool_active
            assert solver.run(None, 10, b=B[:, :2]).iterations == 10
            assert solver.spawn_count == 1

    def test_default_capacity_is_constructor_width(self, block_system):
        """Without capacity_k the old exact-width world survives as the
        degenerate capacity: wider requests raise."""
        A, B, _ = block_system
        solver = ProcessAsyRGS(A, B[:, 0], nproc=2)
        assert solver.capacity_k == 1
        with pytest.raises(ShapeError, match="layout capacity"):
            solver.run(None, 10, b=B)

    def test_capacity_narrower_than_ctor_block_rejected(self, block_system):
        A, B, _ = block_system
        with pytest.raises(ModelError, match="narrower"):
            ProcessAsyRGS(A, B, nproc=2, capacity_k=2)

    def test_k1_request_on_wide_pool_bit_equals_oneshot(self, block_system):
        """A single-RHS request served by a capacity-4 pool takes the
        same scalar gather path as a k=1 layout: bit-identical iterates
        at nproc=1."""
        A, B, _ = block_system
        n = A.shape[0]
        with ProcessAsyRGS(
            A, B, nproc=1, capacity_k=B.shape[1],
            directions=DirectionStream(n, seed=3),
        ) as solver:
            served = solver.solve(
                tol=1e-8, max_sweeps=300, sync_every_sweeps=10, b=B[:, 1]
            )
        one = ProcessAsyRGS(
            A, B[:, 1], nproc=1, directions=DirectionStream(n, seed=3)
        ).solve(tol=1e-8, max_sweeps=300, sync_every_sweeps=10)
        np.testing.assert_array_equal(served.x, one.x)
        assert served.sweeps_done == one.sweeps_done
        assert served.iterations == one.iterations

    def test_narrow_block_request_matches_oneshot(self, block_system):
        A, B, X_star = block_system
        n = A.shape[0]
        with ProcessAsyRGS(
            A, B, nproc=1, capacity_k=B.shape[1],
            directions=DirectionStream(n, seed=3),
        ) as solver:
            served = solver.solve(
                tol=1e-8, max_sweeps=300, sync_every_sweeps=10, b=B[:, :2]
            )
        one = ProcessAsyRGS(
            A, B[:, :2], nproc=1, directions=DirectionStream(n, seed=3)
        ).solve(tol=1e-8, max_sweeps=300, sync_every_sweeps=10)
        assert served.converged and one.converged
        np.testing.assert_allclose(served.x, one.x, rtol=1e-9, atol=1e-12)
        np.testing.assert_array_equal(served.column_sweeps, one.column_sweeps)
        assert np.abs(served.x - X_star[:, :2]).max() < 1e-5

    def test_narrowed_request_accounting(self, block_system):
        """column_updates counts only the request's active columns, not
        the layout's spare capacity."""
        A, B, _ = block_system
        n = A.shape[0]
        with ProcessAsyRGS(A, B, nproc=2, capacity_k=B.shape[1]) as solver:
            out = solver.run(None, 3 * n, b=B[:, :2])
            assert out.column_updates == 2 * 3 * n
            out1 = solver.run(None, 3 * n, b=B[:, 0])
            assert out1.column_updates == 3 * n

    def test_spare_columns_stay_zero(self, block_system):
        """Workers must never write the masked spare columns: after a
        narrow request, a full-width request starting from x0=0 sees no
        leakage from the previous call."""
        A, B, X_star = block_system
        with ProcessAsyRGS(
            A, B, nproc=1, capacity_k=B.shape[1],
            directions=DirectionStream(A.shape[0], seed=3),
        ) as solver:
            solver.solve(tol=1e-8, max_sweeps=300, sync_every_sweeps=10, b=B[:, 0])
            full = solver.solve(tol=1e-8, max_sweeps=300, sync_every_sweeps=10)
        fresh = ProcessAsyRGS(
            A, B, nproc=1, directions=DirectionStream(A.shape[0], seed=3)
        ).solve(tol=1e-8, max_sweeps=300, sync_every_sweeps=10)
        np.testing.assert_array_equal(full.x, fresh.x)

    def test_retirement_on_narrowed_request(self, block_system):
        """Per-column retirement applies to the request's columns, with
        warm-started columns retiring before the first epoch."""
        A, B, X_star = block_system
        n = A.shape[0]
        x0 = np.zeros((n, 3))
        x0[:, 1] = X_star[:, 1]
        with ProcessAsyRGS(A, B, nproc=1, capacity_k=B.shape[1],
                           directions=DirectionStream(n, seed=3)) as solver:
            res = solver.solve(
                tol=1e-9, max_sweeps=300, sync_every_sweeps=10,
                b=B[:, :3], x0=x0,
            )
        assert res.converged
        assert res.column_sweeps.shape == (3,)
        assert res.column_sweeps[1] == 0
        np.testing.assert_array_equal(res.x[:, 1], X_star[:, 1])

    def test_facade_forwards_capacity(self, block_system):
        from repro.core import AsyRGS

        A, B, _ = block_system
        solver = AsyRGS(A, B[:, 0], nproc=2, engine="processes", capacity_k=5)
        assert solver._sim.capacity_k == 5
        with pytest.raises(ModelError, match="capacity_k"):
            AsyRGS(A, B[:, 0], nproc=2, engine="phased", capacity_k=5)


class TestWorkerCrashReporting:
    @pytest.mark.skipif(
        "fork" not in __import__("multiprocessing").get_all_start_methods(),
        reason="fault injection rides fork inheritance",
    )
    def test_crash_raises_with_worker_id(self, system, tmp_path, monkeypatch):
        """A worker that raises mid-epoch surfaces as ModelError naming
        the *guilty* worker (not a sibling that died of the aborted
        barrier), and the context exit stays clean."""
        import repro.execution.pool as processes_module

        A, b, _ = system
        flag = tmp_path / "armed"
        flag.touch()
        real_loop = processes_module._worker_loop

        def crashing_loop(wid, *args, **kwargs):
            if wid == 1 and flag.exists():
                raise RuntimeError("injected worker crash")
            return real_loop(wid, *args, **kwargs)

        monkeypatch.setattr(processes_module, "_worker_loop", crashing_loop)
        with ProcessAsyRGS(
            A, b, nproc=3, start_method="fork", barrier_timeout=60.0
        ) as solver:
            with pytest.raises(ModelError, match="worker process 1 crashed"):
                solver.solve(tol=1e-8, max_sweeps=100, sync_every_sweeps=10)
            # The broken pool was dropped; the next call respawns.
            flag.unlink()
            res = solver.solve(tol=1e-8, max_sweeps=400, sync_every_sweeps=10)
            assert res.converged
            assert solver.spawn_count == 2


class TestValidation:
    def test_zero_processes_rejected(self, system):
        A, b, _ = system
        with pytest.raises(ModelError):
            ProcessAsyRGS(A, b, nproc=0)

    def test_wrong_length_b_rejected(self, system):
        A, b, _ = system
        with pytest.raises(ShapeError):
            ProcessAsyRGS(A, b[:-1], nproc=2)

    def test_bad_beta_rejected(self, system):
        A, b, _ = system
        with pytest.raises(ModelError):
            ProcessAsyRGS(A, b, nproc=2, beta=2.5)

    def test_bad_x0_rejected(self, system):
        A, b, _ = system
        p = ProcessAsyRGS(A, b, nproc=2)
        with pytest.raises(ShapeError):
            p.run(np.zeros(5), 10)

    def test_negative_iterations_rejected(self, system):
        A, b, _ = system
        with pytest.raises(ModelError):
            ProcessAsyRGS(A, b, nproc=2).run(None, -1)

    def test_stream_dimension_mismatch(self, system):
        A, b, _ = system
        with pytest.raises(ModelError):
            ProcessAsyRGS(A, b, nproc=2, directions=DirectionStream(7, seed=0))

    def test_complex_b_rejected_as_shape_error(self, system):
        """A wrong-dtype b is a contract violation with the shared
        wording, not a NumPy TypeError from engine depths."""
        A, b, _ = system
        with pytest.raises(ShapeError, match="cannot be converted"):
            ProcessAsyRGS(A, b.astype(np.complex128), nproc=2)

    def test_complex_b_override_rejected(self, system):
        A, b, _ = system
        with ProcessAsyRGS(A, b, nproc=2) as solver:
            with pytest.raises(ShapeError, match="cannot be converted"):
                solver.run(None, 10, b=b.astype(np.complex128))
            assert solver.pool_active  # validation never hurts the pool

    def test_non_contiguous_block_accepted(self, block_system):
        """A non-contiguous RHS block (a strided view) must solve
        identically to its contiguous copy."""
        A, B, _ = block_system
        n = A.shape[0]
        wide = np.empty((n, 2 * B.shape[1]))
        wide[:, ::2] = B
        strided = wide[:, ::2]  # same values, non-contiguous
        assert not strided.flags["C_CONTIGUOUS"]
        res_s = ProcessAsyRGS(
            A, strided, nproc=1, directions=DirectionStream(n, seed=3)
        ).run(None, 3 * n)
        res_c = ProcessAsyRGS(
            A, np.ascontiguousarray(strided), nproc=1,
            directions=DirectionStream(n, seed=3),
        ).run(None, 3 * n)
        np.testing.assert_array_equal(res_s.x, res_c.x)
