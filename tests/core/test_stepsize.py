"""Unit tests for step-size policies (Section 6)."""

import pytest

from repro.core import (
    auto_step_size,
    max_beta_consistent,
    max_beta_inconsistent,
    optimal_beta_consistent,
    optimal_beta_inconsistent,
    rho_infinity,
    rho_two,
)
from repro.exceptions import ModelError
from repro.workloads import random_unit_diagonal_spd


@pytest.fixture(scope="module")
def A():
    return random_unit_diagonal_spd(30, nnz_per_row=4, offdiag_scale=0.7, seed=2)


class TestOptimalSteps:
    def test_zero_tau_recovers_unit_or_half(self):
        assert optimal_beta_consistent(0.05, 0) == 1.0
        assert optimal_beta_inconsistent(0.05, 0) == 0.5

    def test_consistent_decreases_with_tau(self):
        betas = [optimal_beta_consistent(0.02, t) for t in (0, 5, 50, 500)]
        assert all(b2 < b1 for b1, b2 in zip(betas, betas[1:]))

    def test_inconsistent_decreases_quadratically(self):
        b10 = optimal_beta_inconsistent(0.01, 10)
        b100 = optimal_beta_inconsistent(0.01, 100)
        # τ² scaling: 100× larger denominator term.
        assert b100 < b10 / 10

    def test_consistent_formula(self):
        assert optimal_beta_consistent(0.1, 5) == pytest.approx(1 / 2.0)

    def test_inconsistent_formula(self):
        assert optimal_beta_inconsistent(0.1, 2) == pytest.approx(1 / 2.4)

    def test_max_is_twice_optimal_consistent(self):
        assert max_beta_consistent(0.03, 7) == pytest.approx(
            2 * optimal_beta_consistent(0.03, 7)
        )

    def test_max_beta_inconsistent_below_one(self):
        assert max_beta_inconsistent(0.05, 10) < 1.0

    def test_negative_inputs_rejected(self):
        with pytest.raises(ModelError):
            max_beta_inconsistent(-1.0, 2)


class TestAutoStepSize:
    def test_auto_consistent_from_matrix(self, A):
        b = auto_step_size(A, tau=8, consistent=True)
        assert b == pytest.approx(optimal_beta_consistent(rho_infinity(A), 8))

    def test_auto_inconsistent_from_matrix(self, A):
        b = auto_step_size(A, tau=8, consistent=False)
        assert b == pytest.approx(optimal_beta_inconsistent(rho_two(A), 8))

    def test_auto_with_explicit_rho(self):
        assert auto_step_size(None, tau=4, consistent=True, rho=0.125) == pytest.approx(
            1 / 2.0
        )

    def test_auto_with_explicit_rho2(self):
        b = auto_step_size(None, tau=3, consistent=False, rho2=0.1)
        assert b == pytest.approx(1 / 2.9)

    def test_auto_requires_matrix_or_coefficient(self):
        with pytest.raises(ModelError):
            auto_step_size(None, tau=4, consistent=True)
        with pytest.raises(ModelError):
            auto_step_size(None, tau=4, consistent=False)

    def test_auto_in_valid_range(self, A):
        for tau in (0, 1, 16, 256):
            for consistent in (True, False):
                b = auto_step_size(A, tau=tau, consistent=consistent)
                assert 0 < b <= 1.0
