"""Unit tests for synchronous randomized Gauss-Seidel."""

import numpy as np
import pytest

from repro.core import randomized_gauss_seidel, rgs_sweep
from repro.exceptions import ModelError, ShapeError
from repro.rng import DirectionStream
from repro.workloads import laplacian_2d, random_unit_diagonal_spd

from ..conftest import manufactured_system


@pytest.fixture(scope="module")
def system():
    A = random_unit_diagonal_spd(50, nnz_per_row=5, offdiag_scale=0.7, seed=1)
    b, x_star = manufactured_system(A, seed=2)
    return A, b, x_star


class TestConvergence:
    def test_converges_to_solution(self, system):
        A, b, x_star = system
        r = randomized_gauss_seidel(A, b, sweeps=80, record_history=False)
        assert np.abs(r.x - x_star).max() < 1e-8

    def test_tolerance_early_exit(self, system):
        A, b, _ = system
        r = randomized_gauss_seidel(A, b, sweeps=500, tol=1e-4)
        assert r.converged
        assert r.iterations < 500 * A.shape[0]
        assert r.history.final < 1e-4

    def test_unconverged_flag(self, system):
        A, b, _ = system
        r = randomized_gauss_seidel(A, b, sweeps=1, tol=1e-14)
        assert not r.converged

    def test_history_decreases_overall(self, system):
        A, b, _ = system
        r = randomized_gauss_seidel(A, b, sweeps=40)
        assert r.history.values[-1] < 0.05 * r.history.values[0]

    def test_non_unit_diagonal(self):
        """Iteration (3): the general diagonal is handled by the γ/A_rr
        normalization."""
        A = laplacian_2d(6, 6)  # diagonal = 4
        b, x_star = manufactured_system(A, seed=3)
        r = randomized_gauss_seidel(A, b, sweeps=400, record_history=False)
        assert np.abs(r.x - x_star).max() < 1e-6

    def test_multirhs(self):
        A = laplacian_2d(5, 5)
        n = A.shape[0]
        X_star = np.stack([np.linspace(0, 1, n), np.cos(np.arange(n))], axis=1)
        B = A.matmat(X_star)
        r = randomized_gauss_seidel(A, B, sweeps=400, record_history=False)
        assert np.abs(r.x - X_star).max() < 1e-6

    @pytest.mark.parametrize("beta", [0.5, 1.0, 1.5])
    def test_relaxation_converges(self, system, beta):
        A, b, x_star = system
        r = randomized_gauss_seidel(A, b, sweeps=150, beta=beta, record_history=False)
        assert np.abs(r.x - x_star).max() < 1e-6


class TestDeterminism:
    def test_same_stream_same_result(self, system):
        A, b, _ = system
        n = A.shape[0]
        r1 = randomized_gauss_seidel(
            A, b, sweeps=5, directions=DirectionStream(n, seed=7), record_history=False
        )
        r2 = randomized_gauss_seidel(
            A, b, sweeps=5, directions=DirectionStream(n, seed=7), record_history=False
        )
        np.testing.assert_array_equal(r1.x, r2.x)

    def test_different_seed_different_path(self, system):
        A, b, _ = system
        n = A.shape[0]
        r1 = randomized_gauss_seidel(
            A, b, sweeps=2, directions=DirectionStream(n, seed=7), record_history=False
        )
        r2 = randomized_gauss_seidel(
            A, b, sweeps=2, directions=DirectionStream(n, seed=8), record_history=False
        )
        assert not np.array_equal(r1.x, r2.x)

    def test_start_iteration_continuation(self, system):
        A, b, _ = system
        n = A.shape[0]
        full = randomized_gauss_seidel(
            A, b, sweeps=4, directions=DirectionStream(n, seed=9), record_history=False
        )
        half = randomized_gauss_seidel(
            A, b, sweeps=2, directions=DirectionStream(n, seed=9), record_history=False
        )
        rest = randomized_gauss_seidel(
            A,
            b,
            x0=half.x,
            sweeps=2,
            directions=DirectionStream(n, seed=9),
            record_history=False,
            start_iteration=2 * n,
        )
        np.testing.assert_array_equal(full.x, rest.x)


class TestAccounting:
    def test_iteration_budget_exact(self, system):
        A, b, _ = system
        r = randomized_gauss_seidel(A, b, iterations=137, record_history=False)
        assert r.iterations == 137

    def test_total_row_nnz_positive(self, system):
        A, b, _ = system
        r = randomized_gauss_seidel(A, b, sweeps=2, record_history=False)
        assert r.total_row_nnz > 0

    def test_history_unit_is_sweeps(self, system):
        A, b, _ = system
        r = randomized_gauss_seidel(A, b, sweeps=3)
        assert r.history.iterations == [0, 1, 2, 3]

    def test_custom_metric(self, system):
        A, b, x_star = system
        r = randomized_gauss_seidel(
            A, b, sweeps=3, metric=lambda x: float(np.abs(x - x_star).max())
        )
        assert r.history.values[-1] < r.history.values[0]


class TestSweepHelper:
    def test_sweep_applies_n_updates(self, system):
        A, b, _ = system
        n = A.shape[0]
        x = np.zeros(n)
        nnz = rgs_sweep(A, b, x, directions=DirectionStream(n, seed=11))
        assert nnz > 0
        assert np.any(x != 0)

    def test_sweep_matches_solver(self, system):
        A, b, _ = system
        n = A.shape[0]
        x = np.zeros(n)
        rgs_sweep(A, b, x, directions=DirectionStream(n, seed=12))
        r = randomized_gauss_seidel(
            A, b, sweeps=1, directions=DirectionStream(n, seed=12),
            record_history=False,
        )
        np.testing.assert_array_equal(x, r.x)


class TestValidation:
    def test_both_budgets_rejected(self, system):
        A, b, _ = system
        with pytest.raises(ModelError):
            randomized_gauss_seidel(A, b, sweeps=1, iterations=10)

    def test_no_budget_rejected(self, system):
        A, b, _ = system
        with pytest.raises(ModelError):
            randomized_gauss_seidel(A, b)

    def test_bad_beta(self, system):
        A, b, _ = system
        with pytest.raises(ModelError):
            randomized_gauss_seidel(A, b, sweeps=1, beta=2.0)

    def test_rectangular_rejected(self):
        from repro.sparse import CSRMatrix

        A = CSRMatrix.from_dense(np.ones((2, 3)))
        with pytest.raises(ShapeError):
            randomized_gauss_seidel(A, np.ones(2), sweeps=1)

    def test_shape_mismatch_b(self, system):
        A, _, _ = system
        with pytest.raises(ShapeError):
            randomized_gauss_seidel(A, np.ones(3), sweeps=1)

    def test_x0_shape_mismatch(self, system):
        A, b, _ = system
        with pytest.raises(ShapeError):
            randomized_gauss_seidel(A, b, x0=np.ones(3), sweeps=1)

    def test_zero_diagonal_rejected(self):
        from repro.sparse import CSRMatrix

        A = CSRMatrix.from_dense(np.array([[0.0, 1.0], [1.0, 1.0]]))
        with pytest.raises(ModelError):
            randomized_gauss_seidel(A, np.ones(2), sweeps=1)
