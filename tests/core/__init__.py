"""Test package."""
