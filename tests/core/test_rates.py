"""Unit tests for empirical rate estimation."""

import math

import numpy as np
import pytest

from repro.core import (
    ConvergenceHistory,
    fit_linear_rate,
    observed_nu,
    randomized_gauss_seidel,
    sweeps_to_tolerance,
)
from repro.exceptions import ModelError
from repro.workloads import random_unit_diagonal_spd

from ..conftest import manufactured_system


def geometric_history(factor: float, n: int = 20, start: float = 1.0):
    h = ConvergenceHistory()
    for k in range(n):
        h.record(k, start * factor**k)
    return h


class TestFit:
    def test_exact_geometric_recovered(self):
        fit = fit_linear_rate(geometric_history(0.7))
        assert fit.factor == pytest.approx(0.7, rel=1e-10)
        assert fit.r_squared == pytest.approx(1.0, abs=1e-12)
        assert fit.points == 20

    def test_skip_ignores_transient(self):
        h = ConvergenceHistory()
        # Fast transient then slower asymptotic rate.
        values = [1.0, 0.1, 0.05, 0.025, 0.0125, 0.00625]
        for k, v in enumerate(values):
            h.record(k, v)
        fit_all = fit_linear_rate(h)
        fit_tail = fit_linear_rate(h, skip=2)
        assert fit_tail.factor == pytest.approx(0.5, rel=1e-10)
        assert fit_all.factor < fit_tail.factor  # transient steepens the fit

    def test_floor_drops_converged_tail(self):
        h = geometric_history(0.5, n=10)
        h.record(10, 0.0)  # exact zero would break the log
        fit = fit_linear_rate(h)
        assert fit.factor == pytest.approx(0.5, rel=1e-10)

    def test_too_few_points(self):
        h = ConvergenceHistory()
        h.record(0, 1.0)
        with pytest.raises(ModelError):
            fit_linear_rate(h)

    def test_halving_iterations(self):
        fit = fit_linear_rate(geometric_history(0.5))
        assert fit.halving_iterations == pytest.approx(1.0)
        stalled = fit_linear_rate(geometric_history(1.0))
        assert math.isinf(stalled.halving_iterations)

    def test_fit_on_real_solver_history(self):
        """RGS on a well-conditioned SPD system shows a clean linear rate
        (r² near 1) — the theorems' qualitative claim."""
        A = random_unit_diagonal_spd(60, nnz_per_row=5, offdiag_scale=0.7, seed=9)
        b, _ = manufactured_system(A, seed=10)
        r = randomized_gauss_seidel(A, b, sweeps=40)
        # floor drops the rounding-noise plateau near machine precision.
        fit = fit_linear_rate(r.history, skip=3, floor=1e-10)
        assert 0 < fit.factor < 1
        assert fit.r_squared > 0.97


class TestObservedNu:
    def test_inverts_epoch_factor(self):
        # contraction = 1 - nu/(2 kappa)
        nu, kappa = 0.8, 10.0
        contraction = 1 - nu / (2 * kappa)
        assert observed_nu(contraction, kappa) == pytest.approx(nu)

    def test_validation(self):
        with pytest.raises(ModelError):
            observed_nu(1.5, 10.0)
        with pytest.raises(ModelError):
            observed_nu(0.5, 0.5)


class TestBudgetPrediction:
    def test_exact_prediction(self):
        fit = fit_linear_rate(geometric_history(0.5))
        assert sweeps_to_tolerance(fit, 1.0, 1e-3) == 10  # 2^-10 < 1e-3

    def test_already_converged(self):
        fit = fit_linear_rate(geometric_history(0.5))
        assert sweeps_to_tolerance(fit, 1e-8, 1e-3) == 0

    def test_nonconverging_rate_rejected(self):
        fit = fit_linear_rate(geometric_history(1.0))
        with pytest.raises(ModelError):
            sweeps_to_tolerance(fit, 1.0, 0.5)

    def test_invalid_values(self):
        fit = fit_linear_rate(geometric_history(0.5))
        with pytest.raises(ModelError):
            sweeps_to_tolerance(fit, -1.0, 0.5)
