"""Unit tests for the computable convergence theory (Theorems 2–5)."""

import numpy as np
import pytest

from repro.core import (
    bound_report,
    chi,
    epoch_length,
    iterations_for_accuracy,
    nu_tau,
    omega_tau,
    optimal_beta_consistent,
    optimal_beta_inconsistent,
    max_beta_consistent,
    max_beta_inconsistent,
    psi,
    rho_infinity,
    rho_two,
    synchronous_bound,
    theorem2_epoch_bound,
    theorem2_free_bound,
    theorem4_epoch_bound,
    theorem4_free_bound,
)
from repro.exceptions import ModelError, ShapeError
from repro.sparse import CSRMatrix
from repro.workloads import random_unit_diagonal_spd

from ..conftest import random_dense


@pytest.fixture(scope="module")
def A():
    return random_unit_diagonal_spd(40, nnz_per_row=5, offdiag_scale=0.8, seed=7)


class TestMatrixCoefficients:
    def test_rho_matches_definition(self, A):
        dense = A.to_dense()
        expected = np.abs(dense).sum(axis=1).max() / A.shape[0]
        assert rho_infinity(A) == pytest.approx(expected)

    def test_rho2_matches_definition(self, A):
        dense = A.to_dense()
        expected = (dense**2).sum(axis=1).max() / A.shape[0]
        assert rho_two(A) == pytest.approx(expected)

    def test_rho2_le_rho_unit_diagonal(self, A):
        """For unit-diagonal matrices |A_lr| ≤ 1 entry-wise, so
        ρ₂ ≤ ρ (paper, Section 7 discussion)."""
        assert rho_two(A) <= rho_infinity(A) + 1e-15

    def test_rho2_at_least_one_over_n(self, A):
        """ρ₂ ≥ 1/n because the diagonal alone contributes 1/n."""
        assert rho_two(A) >= 1.0 / A.shape[0] - 1e-15

    def test_identity_coefficients(self):
        I = CSRMatrix.identity(10)
        assert rho_infinity(I) == pytest.approx(0.1)
        assert rho_two(I) == pytest.approx(0.1)

    def test_rectangular_rejected(self):
        R = CSRMatrix.from_dense(random_dense(3, 4, seed=1))
        with pytest.raises(ShapeError):
            rho_infinity(R)
        with pytest.raises(ShapeError):
            rho_two(R)

    def test_diagonally_dominant_rho_bound(self):
        """Paper: ρ ≤ 2/n for symmetric diagonally dominant unit-diagonal
        matrices, regardless of sparsity. (random_unit_diagonal_spd keeps
        absolute off-diagonal row sums below 1, i.e. it IS unit-diagonal
        diagonally dominant.)"""
        A_dd = random_unit_diagonal_spd(60, nnz_per_row=12, offdiag_scale=0.95, seed=3)
        assert rho_infinity(A_dd) <= 2.0 / 60 + 1e-12


class TestRateFactors:
    def test_nu_at_unit_step(self):
        # ν_τ(1) = 1 − 2ρτ (Theorem 2's ν).
        assert nu_tau(1.0, 0.01, 10) == pytest.approx(1 - 0.2)

    def test_nu_zero_tau_recovers_synchronous(self):
        # τ=0: ν = 2β − β² = β(2−β), the bound-(2) factor.
        for beta in (0.5, 1.0, 1.5):
            assert nu_tau(beta, 0.123, 0) == pytest.approx(beta * (2 - beta))

    def test_omega_formula(self):
        beta, rho2, tau = 0.4, 0.02, 5
        expected = 2 * beta * (1 - beta - rho2 * tau**2 * beta / 2)
        assert omega_tau(beta, rho2, tau) == pytest.approx(expected)

    def test_optimal_beta_consistent_maximizes_nu(self):
        rho, tau = 0.013, 17
        b_star = optimal_beta_consistent(rho, tau)
        grid = np.linspace(0.01, 1.2, 500)
        values = [nu_tau(b, rho, tau) for b in grid]
        assert nu_tau(b_star, rho, tau) >= max(values) - 1e-10

    def test_optimal_nu_value(self):
        # ν_τ(β̃) = 1/(1 + 2ρτ) (Section 6 discussion).
        rho, tau = 0.02, 9
        b_star = optimal_beta_consistent(rho, tau)
        assert nu_tau(b_star, rho, tau) == pytest.approx(1 / (1 + 2 * rho * tau))

    def test_optimal_beta_inconsistent_maximizes_omega(self):
        rho2, tau = 0.008, 11
        b_star = optimal_beta_inconsistent(rho2, tau)
        grid = np.linspace(0.01, 0.99, 500)
        values = [omega_tau(b, rho2, tau) for b in grid]
        assert omega_tau(b_star, rho2, tau) >= max(values) - 1e-10

    def test_max_beta_consistent_boundary(self):
        rho, tau = 0.01, 20
        b_max = max_beta_consistent(rho, tau)
        assert nu_tau(b_max, rho, tau) == pytest.approx(0.0, abs=1e-12)
        assert nu_tau(0.99 * b_max, rho, tau) > 0

    def test_max_beta_inconsistent_boundary(self):
        rho2, tau = 0.004, 15
        b_max = max_beta_inconsistent(rho2, tau)
        assert omega_tau(b_max, rho2, tau) == pytest.approx(0.0, abs=1e-12)
        assert omega_tau(0.99 * b_max, rho2, tau) > 0

    def test_any_tau_admits_convergent_consistent_step(self):
        """Section 6's point: for ANY delay bound there is a convergent
        step size in the consistent model."""
        for tau in (10, 1000, 10**6):
            b = optimal_beta_consistent(0.05, tau)
            assert nu_tau(b, 0.05, tau) > 0

    def test_negative_inputs_rejected(self):
        with pytest.raises(ModelError):
            optimal_beta_consistent(-0.1, 5)
        with pytest.raises(ModelError):
            optimal_beta_inconsistent(0.1, -5)


class TestBoundCurves:
    def test_synchronous_bound_monotone(self):
        m = np.arange(0, 100)
        curve = synchronous_bound(m, 1.0, 0.5, 50)
        assert curve[0] == 1.0
        assert np.all(np.diff(curve) < 0)

    def test_synchronous_bound_beta_validated(self):
        with pytest.raises(ModelError):
            synchronous_bound(10, 2.5, 0.5, 50)

    def test_epoch_bound_decays(self):
        curve = theorem2_epoch_bound(np.arange(10), 1.0, 0.001, 8, 0.3, 1.9)
        assert np.all(np.diff(curve) < 0)

    def test_epoch_bound_worse_with_larger_tau(self):
        small = theorem2_epoch_bound(5, 1.0, 0.002, 4, 0.3, 1.9)
        large = theorem2_epoch_bound(5, 1.0, 0.002, 64, 0.3, 1.9)
        assert float(large) > float(small)

    def test_free_bound_above_epoch_bound(self):
        """Assertion (b)'s rate is never better than assertion (a)'s —
        the cost of never synchronizing."""
        args = (1.0, 0.001, 8, 0.3, 1.9)
        epoch = theorem2_epoch_bound(6, *args)
        free = theorem2_free_bound(6, *args, 100)
        assert float(free) >= float(epoch) - 1e-12

    def test_theorem4_bounds_decay(self):
        curve = theorem4_epoch_bound(np.arange(8), 0.3, 0.0005, 6, 0.3, 1.9)
        assert np.all(np.diff(curve) < 0)
        free = theorem4_free_bound(np.arange(1, 8), 0.3, 0.0005, 6, 0.3, 1.9, 100)
        assert np.all(free > 0)

    def test_chi_and_psi_positive(self):
        assert chi(1.0, 0.01, 5, 1.5, 100) > 0
        assert psi(0.5, 0.01, 5, 1.5, 100) > 0

    def test_psi_has_extra_tau_factor(self):
        """ψ = τ·χ at matched coefficients (ρ₂τ³ vs ρτ²)."""
        c = chi(0.5, 0.01, 5, 1.5, 100)
        p = psi(0.5, 0.01, 5, 1.5, 100)
        assert p == pytest.approx(5 * c)

    def test_lambda_max_range_validated(self):
        with pytest.raises(ModelError):
            chi(1.0, 0.01, 5, 200.0, 100)
        with pytest.raises(ModelError):
            epoch_length(0.0, 100)

    def test_epoch_length_approximation(self):
        # T₀ ≈ 0.693 n / λ_max for λ_max ≪ n.
        n, lam = 10000, 2.0
        T0 = epoch_length(lam, n)
        assert T0 == pytest.approx(0.693 * n / lam, rel=0.01)

    def test_kappa_validation(self):
        with pytest.raises(ModelError):
            theorem2_epoch_bound(3, 1.0, 0.001, 4, 0.0, 1.0)
        with pytest.raises(ModelError):
            theorem2_epoch_bound(3, 1.0, 0.001, 4, 2.0, 1.0)


class TestIterationCounts:
    def test_markov_count_formula(self):
        m = iterations_for_accuracy(0.1, 0.05, 1.0, 0.4, 1000)
        expected = np.ceil(1000 / 0.4 * np.log(1 / (0.05 * 0.01)))
        assert m == int(expected)

    def test_tighter_accuracy_more_iterations(self):
        loose = iterations_for_accuracy(0.1, 0.1, 1.0, 0.4, 1000)
        tight = iterations_for_accuracy(0.01, 0.1, 1.0, 0.4, 1000)
        assert tight > loose

    def test_validation(self):
        with pytest.raises(ModelError):
            iterations_for_accuracy(0.0, 0.1, 1.0, 0.4, 100)
        with pytest.raises(ModelError):
            iterations_for_accuracy(0.1, 1.5, 1.0, 0.4, 100)
        with pytest.raises(ModelError):
            iterations_for_accuracy(0.1, 0.1, 2.5, 0.4, 100)
        with pytest.raises(ModelError):
            iterations_for_accuracy(0.1, 0.1, 1.0, 0.0, 100)


class TestBoundReport:
    def test_report_fields(self, A):
        rep = bound_report(A, tau=4, beta=1.0)
        assert rep.n == A.shape[0]
        assert rep.rho == pytest.approx(rho_infinity(A))
        assert rep.rho2 == pytest.approx(rho_two(A))
        assert rep.nu == pytest.approx(nu_tau(1.0, rep.rho, 4))

    def test_theorem2_applicability(self, A):
        rho = rho_infinity(A)
        tau_ok = int(0.4 / rho)  # 2ρτ < 1
        assert bound_report(A, tau=tau_ok, beta=1.0).theorem2_applicable
        tau_bad = int(1.0 / rho) + 1
        assert not bound_report(A, tau=tau_bad, beta=1.0).theorem2_applicable

    def test_theorem4_needs_beta_below_one(self, A):
        assert not bound_report(A, tau=1, beta=1.0).theorem4_applicable
        assert bound_report(A, tau=1, beta=0.4).theorem4_applicable

    def test_lines_render(self, A):
        lines = bound_report(A, tau=4, beta=0.5).lines()
        assert any("rho" in line for line in lines)
        assert any("omega" in line for line in lines)
