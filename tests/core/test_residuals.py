"""Unit tests for error/residual measures and convergence histories."""

import numpy as np
import pytest

from repro.core import (
    ConvergenceHistory,
    a_norm,
    a_norm_error,
    relative_a_norm_error,
    relative_residual,
    residual_norm,
)
from repro.exceptions import NotPositiveDefiniteError, ShapeError
from repro.sparse import CSRMatrix
from repro.workloads import laplacian_2d


@pytest.fixture(scope="module")
def A():
    return laplacian_2d(6, 6)


class TestResidualNorms:
    def test_zero_residual_at_solution(self, A):
        x = np.linspace(0, 1, A.shape[0])
        b = A.matvec(x)
        assert residual_norm(A, x, b) == pytest.approx(0.0, abs=1e-12)

    def test_matches_dense_computation(self, A):
        n = A.shape[0]
        x = np.cos(np.arange(n, dtype=float))
        b = np.ones(n)
        expected = np.linalg.norm(b - A.to_dense() @ x)
        assert residual_norm(A, x, b) == pytest.approx(expected)

    def test_relative_residual_normalization(self, A):
        n = A.shape[0]
        b = 2.0 * np.ones(n)
        x = np.zeros(n)
        assert relative_residual(A, x, b) == pytest.approx(1.0)

    def test_relative_residual_zero_rhs(self, A):
        n = A.shape[0]
        x = np.ones(n)
        # With b = 0, returns the absolute residual ‖Ax‖.
        assert relative_residual(A, x, np.zeros(n)) == pytest.approx(
            np.linalg.norm(A.matvec(x))
        )

    def test_multirhs_frobenius(self, A):
        n = A.shape[0]
        X = np.stack([np.ones(n), np.zeros(n)], axis=1)
        B = np.stack([np.zeros(n), np.ones(n)], axis=1)
        expected = np.linalg.norm(B - A.to_dense() @ X)
        assert residual_norm(A, X, B) == pytest.approx(expected)

    def test_shape_mismatch(self, A):
        with pytest.raises(ShapeError):
            residual_norm(A, np.ones(3), np.ones(A.shape[0]))


class TestANorm:
    def test_matches_quadratic_form(self, A):
        n = A.shape[0]
        v = np.sin(np.arange(n, dtype=float))
        expected = np.sqrt(v @ A.to_dense() @ v)
        assert a_norm(A, v) == pytest.approx(expected)

    def test_zero_vector(self, A):
        assert a_norm(A, np.zeros(A.shape[0])) == 0.0

    def test_matrix_argument_sums_columns(self, A):
        n = A.shape[0]
        V = np.stack([np.ones(n), np.arange(n, dtype=float)], axis=1)
        expected = np.sqrt(sum(V[:, j] @ A.to_dense() @ V[:, j] for j in range(2)))
        assert a_norm(A, V) == pytest.approx(expected)

    def test_indefinite_matrix_detected(self):
        M = CSRMatrix.from_dense(np.diag([1.0, -1.0]))
        with pytest.raises(NotPositiveDefiniteError):
            a_norm(M, np.array([0.0, 1.0]))

    def test_error_measures(self, A):
        n = A.shape[0]
        x_star = np.linspace(1, 2, n)
        x = x_star + 0.1
        err = a_norm_error(A, x, x_star)
        assert err == pytest.approx(a_norm(A, 0.1 * np.ones(n)))
        rel = relative_a_norm_error(A, x, x_star)
        assert rel == pytest.approx(err / a_norm(A, x_star))

    def test_error_shape_mismatch(self, A):
        with pytest.raises(ShapeError):
            a_norm_error(A, np.ones(3), np.ones(A.shape[0]))


class TestConvergenceHistory:
    def test_record_and_read(self):
        h = ConvergenceHistory(label="x")
        h.record(0, 1.0)
        h.record(5, 0.5)
        assert len(h) == 2
        assert h.final == 0.5
        its, vals = h.as_arrays()
        np.testing.assert_array_equal(its, [0, 5])
        np.testing.assert_array_equal(vals, [1.0, 0.5])

    def test_monotone_iterations_enforced(self):
        h = ConvergenceHistory()
        h.record(5, 1.0)
        with pytest.raises(ValueError):
            h.record(3, 0.5)

    def test_final_empty_raises(self):
        with pytest.raises(ValueError):
            _ = ConvergenceHistory().final

    def test_first_below(self):
        h = ConvergenceHistory()
        for it, v in [(0, 1.0), (1, 0.3), (2, 0.05), (3, 0.01)]:
            h.record(it, v)
        assert h.first_below(0.1) == 2
        assert h.first_below(1e-9) is None

    def test_reduction_factor(self):
        h = ConvergenceHistory()
        h.record(0, 2.0)
        h.record(1, 0.5)
        assert h.reduction_factor() == pytest.approx(0.25)

    def test_reduction_factor_needs_two_points(self):
        h = ConvergenceHistory()
        h.record(0, 1.0)
        with pytest.raises(ValueError):
            h.reduction_factor()

    def test_reduction_factor_zero_start(self):
        h = ConvergenceHistory()
        h.record(0, 0.0)
        h.record(1, 0.0)
        assert h.reduction_factor() == 0.0
