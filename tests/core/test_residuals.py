"""Unit tests for error/residual measures and convergence histories."""

import numpy as np
import pytest

from repro.core import (
    ConvergenceHistory,
    a_norm,
    a_norm_error,
    column_relative_residuals,
    column_residual_norms,
    relative_a_norm_error,
    relative_residual,
    residual_norm,
)
from repro.exceptions import NotPositiveDefiniteError, ShapeError
from repro.sparse import CSRMatrix
from repro.workloads import laplacian_2d


@pytest.fixture(scope="module")
def A():
    return laplacian_2d(6, 6)


class TestResidualNorms:
    def test_zero_residual_at_solution(self, A):
        x = np.linspace(0, 1, A.shape[0])
        b = A.matvec(x)
        assert residual_norm(A, x, b) == pytest.approx(0.0, abs=1e-12)

    def test_matches_dense_computation(self, A):
        n = A.shape[0]
        x = np.cos(np.arange(n, dtype=float))
        b = np.ones(n)
        expected = np.linalg.norm(b - A.to_dense() @ x)
        assert residual_norm(A, x, b) == pytest.approx(expected)

    def test_relative_residual_normalization(self, A):
        n = A.shape[0]
        b = 2.0 * np.ones(n)
        x = np.zeros(n)
        assert relative_residual(A, x, b) == pytest.approx(1.0)

    def test_relative_residual_zero_rhs(self, A):
        n = A.shape[0]
        x = np.ones(n)
        # With b = 0, returns the absolute residual ‖Ax‖.
        assert relative_residual(A, x, np.zeros(n)) == pytest.approx(
            np.linalg.norm(A.matvec(x))
        )

    def test_multirhs_frobenius(self, A):
        n = A.shape[0]
        X = np.stack([np.ones(n), np.zeros(n)], axis=1)
        B = np.stack([np.zeros(n), np.ones(n)], axis=1)
        expected = np.linalg.norm(B - A.to_dense() @ X)
        assert residual_norm(A, X, B) == pytest.approx(expected)

    def test_shape_mismatch(self, A):
        with pytest.raises(ShapeError):
            residual_norm(A, np.ones(3), np.ones(A.shape[0]))


class TestColumnResiduals:
    def test_matches_per_column_relative_residual(self, A):
        n = A.shape[0]
        X = np.stack([np.cos(np.arange(n, dtype=float)), np.ones(n)], axis=1)
        B = np.stack([np.ones(n), 2.0 * np.ones(n)], axis=1)
        col = column_relative_residuals(A, X, B)
        assert col.shape == (2,)
        for j in range(2):
            assert col[j] == pytest.approx(relative_residual(A, X[:, j], B[:, j]))

    def test_vector_treated_as_one_column(self, A):
        n = A.shape[0]
        x = np.sin(np.arange(n, dtype=float))
        b = np.ones(n)
        col = column_relative_residuals(A, x, b)
        assert col.shape == (1,)
        assert col[0] == pytest.approx(relative_residual(A, x, b))

    def test_aggregate_can_hide_a_bad_column(self, A):
        """The motivating failure mode: the Frobenius aggregate passes a
        tolerance while one column is still far from converged."""
        n = A.shape[0]
        x_good = np.linspace(1, 2, n)
        B = np.stack([A.matvec(x_good)] * 50 + [np.ones(n)], axis=1)
        X = np.stack([x_good] * 50 + [np.zeros(n)], axis=1)
        col = column_relative_residuals(A, X, B)
        agg = relative_residual(A, X, B)
        assert agg < 0.2  # the aggregate looks fine…
        assert col[-1] == pytest.approx(1.0)  # …while one label never moved

    def test_zero_column_falls_back_to_absolute(self, A):
        n = A.shape[0]
        X = np.stack([np.ones(n), np.ones(n)], axis=1)
        B = np.stack([np.ones(n), np.zeros(n)], axis=1)
        col = column_relative_residuals(A, X, B)
        assert col[1] == pytest.approx(np.linalg.norm(A.matvec(np.ones(n))))

    def test_norm_pairs_recover_frobenius_aggregate(self, A):
        n = A.shape[0]
        X = np.stack([np.cos(np.arange(n, dtype=float)), np.ones(n)], axis=1)
        B = np.stack([np.ones(n), 2.0 * np.ones(n)], axis=1)
        num, denom = column_residual_norms(A, X, B)
        assert np.linalg.norm(num) / np.linalg.norm(denom) == pytest.approx(
            relative_residual(A, X, B)
        )

    def test_shape_mismatch(self, A):
        with pytest.raises(ShapeError):
            column_relative_residuals(A, np.ones((3, 2)), np.ones((A.shape[0], 2)))


class TestANorm:
    def test_matches_quadratic_form(self, A):
        n = A.shape[0]
        v = np.sin(np.arange(n, dtype=float))
        expected = np.sqrt(v @ A.to_dense() @ v)
        assert a_norm(A, v) == pytest.approx(expected)

    def test_zero_vector(self, A):
        assert a_norm(A, np.zeros(A.shape[0])) == 0.0

    def test_matrix_argument_sums_columns(self, A):
        n = A.shape[0]
        V = np.stack([np.ones(n), np.arange(n, dtype=float)], axis=1)
        expected = np.sqrt(sum(V[:, j] @ A.to_dense() @ V[:, j] for j in range(2)))
        assert a_norm(A, V) == pytest.approx(expected)

    def test_indefinite_matrix_detected(self):
        M = CSRMatrix.from_dense(np.diag([1.0, -1.0]))
        with pytest.raises(NotPositiveDefiniteError):
            a_norm(M, np.array([0.0, 1.0]))

    def test_error_measures(self, A):
        n = A.shape[0]
        x_star = np.linspace(1, 2, n)
        x = x_star + 0.1
        err = a_norm_error(A, x, x_star)
        assert err == pytest.approx(a_norm(A, 0.1 * np.ones(n)))
        rel = relative_a_norm_error(A, x, x_star)
        assert rel == pytest.approx(err / a_norm(A, x_star))

    def test_error_shape_mismatch(self, A):
        with pytest.raises(ShapeError):
            a_norm_error(A, np.ones(3), np.ones(A.shape[0]))


class TestConvergenceHistory:
    def test_record_and_read(self):
        h = ConvergenceHistory(label="x")
        h.record(0, 1.0)
        h.record(5, 0.5)
        assert len(h) == 2
        assert h.final == 0.5
        its, vals = h.as_arrays()
        np.testing.assert_array_equal(its, [0, 5])
        np.testing.assert_array_equal(vals, [1.0, 0.5])

    def test_monotone_iterations_enforced(self):
        h = ConvergenceHistory()
        h.record(5, 1.0)
        with pytest.raises(ValueError):
            h.record(3, 0.5)

    def test_final_empty_raises(self):
        with pytest.raises(ValueError):
            _ = ConvergenceHistory().final

    def test_first_below(self):
        h = ConvergenceHistory()
        for it, v in [(0, 1.0), (1, 0.3), (2, 0.05), (3, 0.01)]:
            h.record(it, v)
        assert h.first_below(0.1) == 2
        assert h.first_below(1e-9) is None

    def test_reduction_factor(self):
        h = ConvergenceHistory()
        h.record(0, 2.0)
        h.record(1, 0.5)
        assert h.reduction_factor() == pytest.approx(0.25)

    def test_reduction_factor_needs_two_points(self):
        h = ConvergenceHistory()
        h.record(0, 1.0)
        with pytest.raises(ValueError):
            h.reduction_factor()

    def test_per_column_series(self):
        h = ConvergenceHistory()
        h.record(0, 1.0, columns=[1.0, 0.5])
        h.record(1, 0.4, columns=np.array([0.4, 0.1]))
        series = h.column_series()
        np.testing.assert_allclose(series, [[1.0, 0.5], [0.4, 0.1]])
        assert h.values == [1.0, 0.4]

    def test_per_column_series_must_stay_aligned(self):
        h = ConvergenceHistory()
        h.record(0, 1.0, columns=[1.0, 0.5])
        with pytest.raises(ValueError):
            h.record(1, 0.4)  # dropped the per-column record
        h2 = ConvergenceHistory()
        h2.record(0, 1.0)
        with pytest.raises(ValueError):
            h2.record(1, 0.4, columns=[0.4, 0.1])  # started late
        h3 = ConvergenceHistory()
        h3.record(0, 1.0, columns=[1.0, 0.5])
        with pytest.raises(ValueError):
            h3.record(1, 0.4, columns=[0.4])  # k changed

    def test_rejected_record_leaves_history_untouched(self):
        """A record that fails validation must not partially mutate the
        history — the scalar and per-column series would desynchronize
        permanently."""
        h = ConvergenceHistory()
        h.record(0, 1.0, columns=[1.0, 0.5])
        with pytest.raises(ValueError):
            h.record(1, 0.4, columns=[0.4])  # wrong shape: rejected whole
        assert len(h) == 1
        assert len(h.column_values) == 1
        h.record(1, 0.4, columns=[0.4, 0.1])  # still usable afterwards
        assert h.column_series().shape == (2, 2)

    def test_column_series_empty_raises(self):
        h = ConvergenceHistory()
        h.record(0, 1.0)
        with pytest.raises(ValueError):
            h.column_series()

    def test_reduction_factor_zero_start_is_nan(self):
        """A run that started converged has no meaningful reduction:
        0.0 would read as a *perfect* reduction, so it must be nan."""
        h = ConvergenceHistory()
        h.record(0, 0.0)
        h.record(1, 0.0)
        assert np.isnan(h.reduction_factor())
