"""Unit tests for Jacobi / chaotic relaxation (the historical baselines)."""

import numpy as np
import pytest

from repro.core import (
    chaotic_relaxation,
    jacobi,
    jacobi_spectral_radius,
    randomized_gauss_seidel,
)
from repro.exceptions import ModelError, ShapeError
from repro.sparse import CSRMatrix
from repro.workloads import laplacian_2d, random_unit_diagonal_spd

from ..conftest import manufactured_system


@pytest.fixture(scope="module")
def dominant():
    """Unit-diagonal strictly diagonally dominant ⇒ Jacobi and chaotic
    relaxation both converge (ρ(|M|) < 1)."""
    A = random_unit_diagonal_spd(40, nnz_per_row=4, offdiag_scale=0.7, seed=31)
    b, x_star = manufactured_system(A, seed=32)
    return A, b, x_star


@pytest.fixture(scope="module")
def non_dominant():
    """SPD but NOT (generalized) diagonally dominant: the Chazan–Miranker
    condition fails, ρ(|M|) = (k−1)·a > 1.

    The classic family: block-diagonal equicorrelation blocks
    ``(1−a)·I + a·𝟙𝟙ᵀ`` of size k. Eigenvalues are ``1 + (k−1)a > 0`` and
    ``1 − a > 0`` — SPD for any ``a ∈ (0, 1)`` — while the Jacobi matrix
    has spectral radius ``(k−1)a``, which exceeds 1 once ``a > 1/(k−1)``.
    Here k = 5, a = 0.6: ρ(M) = ρ(|M|) = 2.4.
    """
    k, blocks, a = 5, 6, 0.6
    n = k * blocks
    dense = np.zeros((n, n))
    block = (1 - a) * np.eye(k) + a * np.ones((k, k))
    for t in range(blocks):
        dense[t * k : (t + 1) * k, t * k : (t + 1) * k] = block
    w = np.linalg.eigvalsh(dense)
    assert w[0] > 0, "fixture must be SPD"
    A = CSRMatrix.from_dense(dense, tol=1e-14)
    x_star = np.random.default_rng(7).normal(size=n)
    return A, A.matvec(x_star), x_star


class TestSynchronousJacobi:
    def test_converges_on_dominant(self, dominant):
        A, b, x_star = dominant
        r = jacobi(A, b, sweeps=500, tol=1e-10)
        assert r.converged and not r.diverged
        np.testing.assert_allclose(r.x, x_star, atol=1e-8)

    def test_matches_closed_form_sweep(self, dominant):
        A, b, _ = dominant
        x0 = np.linspace(-1, 1, A.shape[0])
        r = jacobi(A, b, x0=x0, sweeps=1, record_history=False)
        expected = x0 + (b - A.matvec(x0)) / A.diagonal()
        np.testing.assert_allclose(r.x, expected, atol=1e-14)

    def test_diverges_on_non_dominant(self, non_dominant):
        A, b, _ = non_dominant
        r = jacobi(A, b, sweeps=2000)
        assert r.diverged, "Jacobi should diverge when rho(M) > 1"

    def test_history_recorded(self, dominant):
        A, b, _ = dominant
        r = jacobi(A, b, sweeps=5)
        assert len(r.history) == 6

    def test_validation(self, dominant):
        A, b, _ = dominant
        with pytest.raises(ShapeError):
            jacobi(A, np.ones(3))
        zero_diag = CSRMatrix.from_dense(np.array([[0.0, 1.0], [1.0, 1.0]]))
        with pytest.raises(ModelError):
            jacobi(zero_diag, np.ones(2))


class TestChaoticRelaxation:
    def test_full_round_equals_jacobi(self, dominant):
        """round_size = n with cyclic directions is exactly one Jacobi
        sweep per round — the identity tying the historical method into
        the phased execution substrate."""
        A, b, _ = dominant
        n = A.shape[0]
        x0 = np.linspace(0.5, -0.5, n)
        cr = chaotic_relaxation(A, b, x0=x0, sweeps=3, round_size=n,
                                record_history=False)
        jc = jacobi(A, b, x0=x0, sweeps=3, record_history=False)
        np.testing.assert_allclose(cr.x, jc.x, rtol=1e-12, atol=1e-14)

    def test_round_one_is_gauss_seidel(self, dominant):
        """round_size = 1 with cyclic directions is classical
        Gauss-Seidel (each update sees all previous ones)."""
        A, b, _ = dominant
        n = A.shape[0]
        from repro.core import CyclicDirections

        cr = chaotic_relaxation(A, b, sweeps=2, round_size=1, record_history=False)
        gs = randomized_gauss_seidel(
            A, b, sweeps=2, directions=CyclicDirections(n), record_history=False
        )
        np.testing.assert_allclose(cr.x, gs.x, rtol=1e-12, atol=1e-14)

    def test_converges_on_dominant_any_round(self, dominant):
        A, b, x_star = dominant
        for rs in (1, 7, A.shape[0]):
            r = chaotic_relaxation(A, b, sweeps=400, round_size=rs, tol=1e-8)
            assert r.converged, f"round_size={rs}"

    def test_diverges_on_non_dominant(self, non_dominant):
        A, b, _ = non_dominant
        r = chaotic_relaxation(A, b, sweeps=2000, round_size=A.shape[0])
        assert r.diverged

    def test_gauss_seidel_converges_where_jacobi_diverges(self, non_dominant):
        """The motivating contrast: on the same SPD matrix, chaotic
        relaxation diverges while the Gauss-Seidel-type iteration (the
        paper's foundation) converges."""
        A, b, x_star = non_dominant
        bad = chaotic_relaxation(A, b, sweeps=500, round_size=A.shape[0])
        assert bad.diverged
        good = randomized_gauss_seidel(A, b, sweeps=500, tol=1e-8)
        assert good.converged
        np.testing.assert_allclose(good.x, x_star, atol=1e-5)

    def test_round_size_validation(self, dominant):
        A, b, _ = dominant
        with pytest.raises(ModelError):
            chaotic_relaxation(A, b, round_size=0)
        with pytest.raises(ModelError):
            chaotic_relaxation(A, b, round_size=A.shape[0] + 1)


class TestSpectralRadius:
    def test_plain_radius_matches_numpy(self, dominant):
        A, _, _ = dominant
        dense = A.to_dense()
        M = np.eye(A.shape[0]) - dense / np.diag(dense)[:, None]
        expected = np.abs(np.linalg.eigvals(M)).max()
        got = jacobi_spectral_radius(A, iterations=3000)
        assert got == pytest.approx(expected, rel=1e-2)

    def test_absolute_radius_matches_numpy(self, non_dominant):
        A, _, _ = non_dominant
        dense = A.to_dense()
        M = np.eye(A.shape[0]) - dense / np.diag(dense)[:, None]
        expected = np.abs(np.linalg.eigvals(np.abs(M))).max()
        got = jacobi_spectral_radius(A, absolute=True, iterations=3000)
        assert got == pytest.approx(expected, rel=1e-2)

    def test_thresholds_explain_behavior(self, dominant, non_dominant):
        """ρ(|M|) < 1 on the dominant fixture, > 1 on the other —
        exactly the Chazan–Miranker dichotomy the runs exhibit."""
        A_ok, _, _ = dominant
        A_bad, _, _ = non_dominant
        assert jacobi_spectral_radius(A_ok, absolute=True) < 1.0
        assert jacobi_spectral_radius(A_bad, absolute=True) > 1.0

    def test_identity_radius_zero(self):
        I = CSRMatrix.identity(5)
        assert jacobi_spectral_radius(I, iterations=50) == pytest.approx(0.0, abs=1e-12)
