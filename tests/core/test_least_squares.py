"""Unit tests for the least-squares solvers (Section 8 / Theorem 5)."""

import numpy as np
import pytest

from repro.core import (
    AsyncLeastSquares,
    column_squared_norms,
    normal_equations,
    rcd_least_squares,
)
from repro.exceptions import ModelError, ShapeError
from repro.execution import AsyncSimulator, InconsistentUniform, UniformDelay, ZeroDelay
from repro.rng import DirectionStream
from repro.sparse import CSRMatrix
from repro.workloads import random_least_squares


@pytest.fixture(scope="module")
def consistent():
    return random_least_squares(60, 25, nnz_per_row=4, seed=1)


@pytest.fixture(scope="module")
def noisy():
    return random_least_squares(80, 30, nnz_per_row=4, noise_scale=0.3, seed=2)


def dense_lstsq(prob):
    return np.linalg.lstsq(prob.A.to_dense(), prob.b, rcond=None)[0]


class TestHelpers:
    def test_normal_equations_match_dense(self, consistent):
        N, c = normal_equations(consistent.A, consistent.b)
        d = consistent.A.to_dense()
        np.testing.assert_allclose(N.to_dense(), d.T @ d, atol=1e-12)
        np.testing.assert_allclose(c, d.T @ consistent.b, atol=1e-12)

    def test_normal_equations_shape_check(self, consistent):
        with pytest.raises(ShapeError):
            normal_equations(consistent.A, np.ones(3))

    def test_column_squared_norms(self, consistent):
        d = consistent.A.to_dense()
        np.testing.assert_allclose(
            column_squared_norms(consistent.A), (d * d).sum(axis=0), atol=1e-12
        )


class TestSynchronousRCD:
    def test_consistent_system_solved(self, consistent):
        r = rcd_least_squares(consistent.A, consistent.b, sweeps=200, tol=1e-10)
        assert r.converged
        np.testing.assert_allclose(r.x, consistent.x_generating, atol=1e-6)

    def test_noisy_system_reaches_normal_solution(self, noisy):
        x_ls = dense_lstsq(noisy)
        r = rcd_least_squares(noisy.A, noisy.b, sweeps=600, record_history=False)
        np.testing.assert_allclose(r.x, x_ls, atol=1e-5)

    def test_residual_norm_reported(self, noisy):
        r = rcd_least_squares(noisy.A, noisy.b, sweeps=300, record_history=False)
        expected = np.linalg.norm(noisy.b - noisy.A.matvec(r.x))
        assert r.residual_norm == pytest.approx(expected, rel=1e-10)

    def test_history_decreases(self, consistent):
        r = rcd_least_squares(consistent.A, consistent.b, sweeps=30)
        assert r.history.values[-1] < r.history.values[0]

    def test_relaxation(self, consistent):
        r = rcd_least_squares(
            consistent.A, consistent.b, sweeps=300, beta=0.7, record_history=False
        )
        np.testing.assert_allclose(r.x, consistent.x_generating, atol=1e-4)

    def test_budget_validation(self, consistent):
        with pytest.raises(ModelError):
            rcd_least_squares(consistent.A, consistent.b)
        with pytest.raises(ModelError):
            rcd_least_squares(consistent.A, consistent.b, sweeps=1, iterations=5)

    def test_zero_column_rejected(self):
        A = CSRMatrix.from_dense(np.array([[1.0, 0.0], [1.0, 0.0], [0.0, 0.0]]))
        with pytest.raises(ModelError):
            rcd_least_squares(A, np.ones(3), sweeps=1)


class TestTheorem5Equivalence:
    """Iteration (21) must coincide, update for update, with AsyRGS
    applied to the explicitly formed normal equations."""

    @pytest.mark.parametrize(
        "model_factory",
        [
            lambda: ZeroDelay(),
            lambda: UniformDelay(5, seed=4),
            lambda: InconsistentUniform(4, miss_prob=0.6, seed=5),
        ],
        ids=["zero", "uniform", "inconsistent"],
    )
    def test_matches_normal_equation_asyrgs(self, consistent, model_factory):
        A, b = consistent.A, consistent.b
        n = A.shape[1]
        N, c = normal_equations(A, b)
        beta = 0.6
        direct = AsyncLeastSquares(
            A, b, delay_model=model_factory(),
            directions=DirectionStream(n, seed=6), beta=beta,
        ).run(np.zeros(n), 400)
        oracle = AsyncSimulator(
            N, c, delay_model=model_factory(),
            directions=DirectionStream(n, seed=6), beta=beta,
        ).run(np.zeros(n), 400)
        np.testing.assert_allclose(direct.x, oracle.x, rtol=1e-10, atol=1e-12)


class TestAsyncLS:
    def test_converges_consistent(self, consistent):
        als = AsyncLeastSquares(
            consistent.A, consistent.b,
            delay_model=UniformDelay(6, seed=7), beta=0.8,
        )
        r = als.run(np.zeros(consistent.A.shape[1]), 8000)
        np.testing.assert_allclose(r.x, consistent.x_generating, atol=1e-4)

    def test_converges_noisy_to_ls_solution(self, noisy):
        x_ls = dense_lstsq(noisy)
        als = AsyncLeastSquares(
            noisy.A, noisy.b, delay_model=UniformDelay(4, seed=8), beta=0.7,
        )
        r = als.run(np.zeros(noisy.A.shape[1]), 12000)
        np.testing.assert_allclose(r.x, x_ls, atol=1e-3)

    def test_checkpoints(self, consistent):
        A, b = consistent.A, consistent.b
        als = AsyncLeastSquares(A, b, delay_model=ZeroDelay())
        r = als.run(
            np.zeros(A.shape[1]), 200,
            checkpoint_every=50,
            checkpoint_metric=lambda x: float(np.linalg.norm(b - A.matvec(x))),
        )
        assert r.history is not None and len(r.history) == 4

    def test_validation(self, consistent):
        A, b = consistent.A, consistent.b
        with pytest.raises(ModelError):
            AsyncLeastSquares(A, b, beta=0.0)
        with pytest.raises(ShapeError):
            AsyncLeastSquares(A, np.ones(3))
        als = AsyncLeastSquares(A, b)
        with pytest.raises(ShapeError):
            als.run(np.zeros(5), 10)
        with pytest.raises(ModelError):
            als.run(np.zeros(A.shape[1]), -1)
