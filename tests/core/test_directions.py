"""Unit tests for direction-selection strategies."""

import numpy as np
import pytest

from repro.core import (
    CyclicDirections,
    PermutedCyclicDirections,
    WeightedDirections,
)
from repro.core.rgs import randomized_gauss_seidel
from repro.workloads import random_unit_diagonal_spd

from ..conftest import manufactured_system


class TestCyclic:
    def test_cycles_through_coordinates(self):
        c = CyclicDirections(4)
        np.testing.assert_array_equal(c.directions(0, 8), [0, 1, 2, 3, 0, 1, 2, 3])

    def test_single_matches_batch(self):
        c = CyclicDirections(5)
        batch = c.directions(7, 10)
        singles = [c.direction(7 + k) for k in range(10)]
        np.testing.assert_array_equal(batch, singles)

    def test_invalid_dimension(self):
        with pytest.raises(ValueError):
            CyclicDirections(0)

    def test_classic_gauss_seidel_converges(self):
        """The paper's remark: cyclic directions recover classical GS."""
        A = random_unit_diagonal_spd(30, nnz_per_row=4, offdiag_scale=0.6, seed=5)
        b, x_star = manufactured_system(A, seed=6)
        r = randomized_gauss_seidel(
            A, b, sweeps=60, directions=CyclicDirections(30), record_history=False
        )
        assert np.abs(r.x - x_star).max() < 1e-8


class TestPermutedCyclic:
    def test_each_sweep_is_a_permutation(self):
        p = PermutedCyclicDirections(10, seed=3)
        for sweep in range(3):
            d = p.directions(sweep * 10, 10)
            np.testing.assert_array_equal(np.sort(d), np.arange(10))

    def test_sweeps_differ(self):
        p = PermutedCyclicDirections(20, seed=3)
        assert not np.array_equal(p.directions(0, 20), p.directions(20, 20))

    def test_single_matches_batch_across_sweep_boundary(self):
        p = PermutedCyclicDirections(7, seed=4)
        batch = p.directions(5, 10)  # spans two sweeps
        singles = [p.direction(5 + k) for k in range(10)]
        np.testing.assert_array_equal(batch, singles)

    def test_deterministic(self):
        a = PermutedCyclicDirections(12, seed=5).directions(0, 36)
        b = PermutedCyclicDirections(12, seed=5).directions(0, 36)
        np.testing.assert_array_equal(a, b)

    def test_invalid_dimension(self):
        with pytest.raises(ValueError):
            PermutedCyclicDirections(-1)


class TestWeighted:
    def test_uniform_weights_cover_all(self):
        w = WeightedDirections(np.ones(6), seed=1)
        d = w.directions(0, 6000)
        assert set(np.unique(d).tolist()) == set(range(6))

    def test_zero_weight_never_sampled(self):
        weights = np.array([1.0, 0.0, 1.0])
        w = WeightedDirections(weights, seed=2)
        d = w.directions(0, 5000)
        assert 1 not in set(d.tolist())

    def test_proportional_sampling(self):
        weights = np.array([1.0, 3.0])
        w = WeightedDirections(weights, seed=3)
        d = w.directions(0, 40000)
        frac = np.mean(d == 1)
        assert abs(frac - 0.75) < 0.01

    def test_single_matches_batch(self):
        w = WeightedDirections(np.array([0.2, 0.5, 0.3]), seed=4)
        batch = w.directions(11, 20)
        singles = [w.direction(11 + k) for k in range(20)]
        np.testing.assert_array_equal(batch, singles)

    def test_invalid_weights(self):
        with pytest.raises(ValueError):
            WeightedDirections(np.array([]))
        with pytest.raises(ValueError):
            WeightedDirections(np.array([-1.0, 2.0]))
        with pytest.raises(ValueError):
            WeightedDirections(np.zeros(3))

    def test_diag_weighted_rgs_converges(self):
        """Leventhal–Lewis general sampling (∝ A_rr) on a non-unit
        diagonal matrix."""
        from repro.workloads import laplacian_2d

        A = laplacian_2d(5, 5)
        b, x_star = manufactured_system(A, seed=7)
        w = WeightedDirections(A.diagonal(), seed=8)
        r = randomized_gauss_seidel(A, b, sweeps=300, directions=w, record_history=False)
        assert np.abs(r.x - x_star).max() < 1e-6


class TestSORCorrespondence:
    def test_cyclic_rgs_with_step_is_textbook_sor(self):
        """Cyclic directions + step size β reproduce classical SOR with
        relaxation ω = β exactly — the correspondence behind the paper's
        Griebel–Oswald step-size remark (over/under-relaxation)."""
        from repro.workloads import laplacian_2d

        A = laplacian_2d(5, 5)
        n = A.shape[0]
        b, _ = manufactured_system(A, seed=13)
        omega = 1.3
        dense = A.to_dense()
        diag = np.diag(dense)

        # Textbook SOR sweep, in-place ascending coordinate order.
        x_ref = np.zeros(n)
        for _ in range(3):
            for i in range(n):
                sigma = dense[i] @ x_ref - diag[i] * x_ref[i]
                x_ref[i] = (1 - omega) * x_ref[i] + omega * (b[i] - sigma) / diag[i]

        from repro.core import CyclicDirections

        r = randomized_gauss_seidel(
            A, b, sweeps=3, beta=omega, directions=CyclicDirections(n),
            record_history=False,
        )
        np.testing.assert_allclose(r.x, x_ref, rtol=1e-12, atol=1e-14)
