"""Unit tests for the AsyRGS solver facade."""

import numpy as np
import pytest

from repro.core import AsyRGS, randomized_gauss_seidel
from repro.exceptions import ModelError, ShapeError
from repro.execution import InconsistentUniform, LossyWrites, UniformDelay
from repro.rng import DirectionStream
from repro.workloads import random_unit_diagonal_spd

from ..conftest import manufactured_system


@pytest.fixture(scope="module")
def system():
    A = random_unit_diagonal_spd(45, nnz_per_row=5, offdiag_scale=0.7, seed=21)
    b, x_star = manufactured_system(A, seed=22)
    return A, b, x_star


class TestEngines:
    def test_phased_solver_converges(self, system):
        A, b, x_star = system
        s = AsyRGS(A, b, nproc=8)
        r = s.solve(tol=1e-8, max_sweeps=300)
        assert r.converged
        assert np.abs(r.x - x_star).max() < 1e-6

    def test_general_solver_converges(self, system):
        A, b, x_star = system
        s = AsyRGS(A, b, nproc=8, engine="general")
        r = s.solve(tol=1e-8, max_sweeps=300)
        assert r.converged
        assert np.abs(r.x - x_star).max() < 1e-6

    def test_custom_delay_model(self, system):
        A, b, x_star = system
        s = AsyRGS(A, b, engine="general", delay_model=UniformDelay(12, seed=3))
        r = s.solve(tol=1e-6, max_sweeps=300)
        assert r.converged

    def test_inconsistent_model_with_auto_beta(self, system):
        A, b, _ = system
        s = AsyRGS(
            A, b, engine="general",
            delay_model=InconsistentUniform(6, miss_prob=0.5, seed=4),
            beta="auto",
        )
        assert 0 < s.beta < 1  # Theorem 4 regime
        r = s.solve(tol=1e-5, max_sweeps=400)
        assert r.converged

    def test_nproc_one_matches_synchronous(self, system):
        A, b, _ = system
        n = A.shape[0]
        s = AsyRGS(A, b, nproc=1, directions=DirectionStream(n, seed=5))
        r = s.run_sweeps(4)
        ref = randomized_gauss_seidel(
            A, b, sweeps=4, directions=DirectionStream(n, seed=5),
            record_history=False,
        )
        np.testing.assert_allclose(r.x, ref.x, rtol=1e-12, atol=1e-14)

    def test_unknown_engine_rejected(self, system):
        A, b, _ = system
        with pytest.raises(ModelError):
            AsyRGS(A, b, engine="warp")

    def test_delay_model_with_phased_rejected(self, system):
        A, b, _ = system
        with pytest.raises(ModelError):
            AsyRGS(A, b, engine="phased", delay_model=UniformDelay(2))

    def test_write_model_with_phased_rejected(self, system):
        A, b, _ = system
        with pytest.raises(ModelError):
            AsyRGS(A, b, engine="phased", write_model=LossyWrites(0.5))


class TestEpochScheme:
    def test_sync_points_counted(self, system):
        A, b, _ = system
        s = AsyRGS(A, b, nproc=4)
        r = s.solve(tol=1e-20, max_sweeps=10, sync_every_sweeps=2)
        assert r.sync_points == 5
        assert r.sweeps == 10

    def test_sync_every_sweeps_validated(self, system):
        A, b, _ = system
        s = AsyRGS(A, b, nproc=4)
        with pytest.raises(ModelError):
            s.solve(tol=1e-4, max_sweeps=10, sync_every_sweeps=0)

    def test_history_per_epoch(self, system):
        A, b, _ = system
        s = AsyRGS(A, b, nproc=4)
        r = s.solve(tol=1e-20, max_sweeps=6, sync_every_sweeps=3)
        assert r.history.iterations == [0, 3, 6]

    def test_budget_respected_when_not_converging(self, system):
        A, b, _ = system
        s = AsyRGS(A, b, nproc=4)
        r = s.solve(tol=1e-30, max_sweeps=7, sync_every_sweeps=3)
        assert r.sweeps == 7
        assert not r.converged


class TestRunSweeps:
    def test_free_running_history(self, system):
        A, b, _ = system
        s = AsyRGS(A, b, nproc=8)
        r = s.run_sweeps(5)
        assert r.sync_points == 0
        assert r.history.iterations == [0, 1, 2, 3, 4, 5]
        assert r.history.values[-1] < r.history.values[0]

    def test_zero_sweeps(self, system):
        A, b, _ = system
        s = AsyRGS(A, b, nproc=2)
        r = s.run_sweeps(0)
        assert r.iterations == 0
        np.testing.assert_array_equal(r.x, np.zeros(A.shape[0]))

    def test_multirhs_run(self, system):
        A, b, _ = system
        B = np.stack([b, 2 * b], axis=1)
        s = AsyRGS(A, B, nproc=4)
        r = s.run_sweeps(30, record_history=False)
        res = B - A.matmat(r.x)
        assert np.linalg.norm(res) / np.linalg.norm(B) < 1e-2


class TestRHSValidation:
    """b is validated once, up front, identically for every engine."""

    @pytest.mark.parametrize("engine", ["phased", "general", "processes"])
    def test_three_dim_b_rejected_at_init(self, system, engine):
        A, b, _ = system
        with pytest.raises(ShapeError, match="expected"):
            AsyRGS(A, np.zeros((A.shape[0], 2, 2)), engine=engine, nproc=2)

    @pytest.mark.parametrize("engine", ["phased", "general", "processes"])
    def test_wrong_length_b_rejected_at_init(self, system, engine):
        A, b, _ = system
        with pytest.raises(ShapeError, match="expected"):
            AsyRGS(A, b[:-3], engine=engine, nproc=2)

    def test_error_message_uniform_across_engines(self, system):
        A, b, _ = system
        messages = set()
        for engine in ("phased", "general", "processes"):
            with pytest.raises(ShapeError) as err:
                AsyRGS(A, b[:-3], engine=engine, nproc=2)
            messages.add(str(err.value))
        assert len(messages) == 1

    def test_block_b_accepted_by_every_engine(self, system):
        A, b, _ = system
        B = np.stack([b, 2 * b], axis=1)
        for engine in ("phased", "general", "processes"):
            assert AsyRGS(A, B, engine=engine, nproc=2).b.shape == B.shape


class TestX0Validation:
    """x0 is validated once, up front, identically for every engine —
    a shape-mismatched x0 used to broadcast silently or fail deep
    inside an engine with an opaque error."""

    @pytest.mark.parametrize("engine", ["phased", "general", "processes"])
    def test_wrong_length_x0_rejected(self, system, engine):
        A, b, _ = system
        s = AsyRGS(A, b, engine=engine, nproc=2)
        with pytest.raises(ShapeError, match="x0 has shape"):
            s.solve(tol=1e-6, max_sweeps=10, x0=np.zeros(5))
        with pytest.raises(ShapeError, match="x0 has shape"):
            s.run_sweeps(1, x0=np.zeros(5))

    @pytest.mark.parametrize("engine", ["phased", "general", "processes"])
    def test_vector_x0_against_block_b_rejected(self, system, engine):
        """The silent-broadcast case: an (n,) x0 against an (n, k) b."""
        A, b, _ = system
        B = np.stack([b, 2 * b], axis=1)
        s = AsyRGS(A, B, engine=engine, nproc=2)
        with pytest.raises(ShapeError, match="x0 has shape"):
            s.solve(tol=1e-6, max_sweeps=10, x0=np.zeros(A.shape[0]))
        with pytest.raises(ShapeError, match="x0 has shape"):
            s.run_sweeps(1, x0=np.zeros(A.shape[0]))

    def test_error_message_uniform_across_engines(self, system):
        A, b, _ = system
        messages = set()
        for engine in ("phased", "general", "processes"):
            with pytest.raises(ShapeError) as err:
                AsyRGS(A, b, engine=engine, nproc=2).solve(
                    tol=1e-6, max_sweeps=10, x0=np.zeros(5)
                )
            messages.add(str(err.value))
        assert len(messages) == 1

    def test_valid_x0_still_accepted(self, system):
        A, b, x_star = system
        s = AsyRGS(A, b, nproc=2)
        r = s.solve(tol=1e-6, max_sweeps=50, x0=x_star.copy())
        assert r.converged


class TestColumnTracking:
    """Per-column convergence and early retirement on the simulated
    engines (the processes engine's variant is tested with the
    multiprocess suite)."""

    @pytest.fixture(scope="class")
    def block(self, system):
        A, b, _ = system
        n = A.shape[0]
        rng = DirectionStream(n, seed=77)
        X_star = np.column_stack(
            [rng.directions(j * n, n).astype(np.float64) / n - 0.5 for j in range(3)]
        )
        return A, A.matmat(X_star), X_star

    @pytest.mark.parametrize("engine", ["phased", "general"])
    def test_all_columns_converge_and_retire(self, block, engine):
        A, B, X_star = block
        s = AsyRGS(A, B, nproc=4, engine=engine)
        r = s.solve(tol=1e-8, max_sweeps=300)
        assert r.converged
        assert r.converged_columns.shape == (3,)
        assert r.converged_columns.all()
        assert (r.column_sweeps >= 0).all()
        assert (r.column_residuals < 1e-8).all()
        assert np.abs(r.x - X_star).max() < 1e-6

    def test_retired_column_is_frozen_and_saves_updates(self, block):
        """A column that starts at the exact solution retires at sweep 0:
        its iterate never changes and the work accounting only charges
        the active columns."""
        A, B, X_star = block
        n, k = B.shape
        x0 = np.zeros((n, k))
        x0[:, 0] = X_star[:, 0]
        s = AsyRGS(A, B, nproc=4)
        r = s.solve(tol=1e-10, max_sweeps=300, x0=x0)
        assert r.converged
        assert r.column_sweeps[0] == 0
        np.testing.assert_array_equal(r.x[:, 0], X_star[:, 0])
        # Exact accounting: column j receives n updates per epoch until
        # its retirement epoch, nothing after.
        n_mat = A.shape[0]
        expected = n_mat * int(
            sum(cs if cs >= 0 else r.sweeps for cs in r.column_sweeps)
        )
        assert r.column_updates == expected
        assert r.column_updates < r.iterations * k
        # Without retirement the frozen column is updated like the rest.
        r_full = s.solve(tol=1e-10, max_sweeps=300, x0=x0, retire=False)
        assert r_full.converged
        assert r_full.column_updates == r_full.iterations * k
        assert r.column_updates < r_full.column_updates

    def test_retirement_preserves_active_trajectories(self, block):
        """Columns evolve independently, so retiring one must not change
        the others' trajectories (deterministic engines, same stream)."""
        A, B, X_star = block
        n, k = B.shape
        x0 = np.zeros((n, k))
        x0[:, 0] = X_star[:, 0]
        s = AsyRGS(A, B, nproc=4)
        r = s.solve(tol=1e-10, max_sweeps=300, x0=x0)
        r_full = s.solve(tol=1e-10, max_sweeps=300, x0=x0, retire=False)
        # Identical trajectories imply identical first-below epochs…
        np.testing.assert_array_equal(r.column_sweeps, r_full.column_sweeps)
        # …and identical per-column residual series up to each column's
        # retirement epoch (after it, the retired run freezes while the
        # full run keeps polishing).
        sr = r.history.column_series()
        sf = r_full.history.column_series()
        for j in range(k):
            e = int(r.column_sweeps[j])
            np.testing.assert_allclose(sr[: e + 1, j], sf[: e + 1, j], rtol=1e-12)

    def test_aggregate_cannot_mask_a_slow_column(self, block):
        """The honesty property: convergence is declared only when every
        column is below tol, even if the Frobenius aggregate passed."""
        A, B, _ = block
        s = AsyRGS(A, B, nproc=4)
        r = s.solve(tol=1e-8, max_sweeps=300)
        final_cols = r.column_residuals
        assert (final_cols < 1e-8).all()
        # And the history's column series is aligned with the scalar one.
        assert r.history.column_series().shape == (len(r.history), 3)

    def test_custom_metric_disables_column_tracking(self, block):
        from repro.core import a_norm_error

        A, B, X_star = block
        s = AsyRGS(A, B, nproc=4)
        r = s.solve(
            tol=1e-6, max_sweeps=300,
            metric=lambda xv: a_norm_error(A, xv, X_star),
        )
        assert r.converged
        assert r.converged_columns is None
        assert r.column_sweeps is None

    def test_retire_with_custom_metric_rejected(self, block):
        A, B, X_star = block
        s = AsyRGS(A, B, nproc=4)
        with pytest.raises(ModelError, match="per-column"):
            s.solve(
                tol=1e-6, max_sweeps=10, retire=True,
                metric=lambda xv: float(np.linalg.norm(xv)),
            )

    def test_single_rhs_reports_one_column(self, system):
        A, b, _ = system
        s = AsyRGS(A, b, nproc=4)
        r = s.solve(tol=1e-8, max_sweeps=300)
        assert r.converged
        assert r.converged_columns.shape == (1,)
        assert r.column_updates == r.iterations


class TestStepSize:
    def test_auto_beta_consistent(self, system):
        A, b, _ = system
        s = AsyRGS(A, b, nproc=16, beta="auto")
        from repro.core import optimal_beta_consistent, rho_infinity

        assert s.beta == pytest.approx(optimal_beta_consistent(rho_infinity(A), s.tau))

    def test_auto_beta_inconsistent_uses_rho2(self, system):
        """Regression: the inconsistent-read models must get the
        Theorem-4 step from ρ₂ (previously ρ was computed, then
        discarded, and ρ₂ recomputed)."""
        from repro.core import optimal_beta_inconsistent, rho_two

        A, b, _ = system
        expected = optimal_beta_inconsistent(rho_two(A), 1)
        s = AsyRGS(A, b, nproc=2, engine="processes", beta="auto")
        assert s.tau == 1
        assert s.beta == pytest.approx(expected)
        s2 = AsyRGS(
            A, b, engine="general", beta="auto",
            delay_model=InconsistentUniform(1, miss_prob=0.5, seed=4),
        )
        assert s2.beta == pytest.approx(expected)

    def test_explicit_beta_used(self, system):
        A, b, _ = system
        s = AsyRGS(A, b, nproc=4, beta=0.6)
        assert s.beta == 0.6
        r = s.run_sweeps(1, record_history=False)
        assert r.beta == 0.6

    def test_invalid_beta(self, system):
        A, b, _ = system
        with pytest.raises(ModelError):
            AsyRGS(A, b, nproc=4, beta=-0.5)


class TestNonAtomic:
    def test_nonatomic_converges_and_counts(self, system):
        A, b, x_star = system
        s = AsyRGS(A, b, nproc=16, atomic=False)
        r = s.run_sweeps(100, record_history=False)
        assert r.lost_writes > 0
        assert np.abs(r.x - x_star).max() < 1e-4
