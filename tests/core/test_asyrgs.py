"""Unit tests for the AsyRGS solver facade."""

import numpy as np
import pytest

from repro.core import AsyRGS, randomized_gauss_seidel
from repro.exceptions import ModelError, ShapeError
from repro.execution import InconsistentUniform, LossyWrites, UniformDelay
from repro.rng import DirectionStream
from repro.workloads import random_unit_diagonal_spd

from ..conftest import manufactured_system


@pytest.fixture(scope="module")
def system():
    A = random_unit_diagonal_spd(45, nnz_per_row=5, offdiag_scale=0.7, seed=21)
    b, x_star = manufactured_system(A, seed=22)
    return A, b, x_star


class TestEngines:
    def test_phased_solver_converges(self, system):
        A, b, x_star = system
        s = AsyRGS(A, b, nproc=8)
        r = s.solve(tol=1e-8, max_sweeps=300)
        assert r.converged
        assert np.abs(r.x - x_star).max() < 1e-6

    def test_general_solver_converges(self, system):
        A, b, x_star = system
        s = AsyRGS(A, b, nproc=8, engine="general")
        r = s.solve(tol=1e-8, max_sweeps=300)
        assert r.converged
        assert np.abs(r.x - x_star).max() < 1e-6

    def test_custom_delay_model(self, system):
        A, b, x_star = system
        s = AsyRGS(A, b, engine="general", delay_model=UniformDelay(12, seed=3))
        r = s.solve(tol=1e-6, max_sweeps=300)
        assert r.converged

    def test_inconsistent_model_with_auto_beta(self, system):
        A, b, _ = system
        s = AsyRGS(
            A, b, engine="general",
            delay_model=InconsistentUniform(6, miss_prob=0.5, seed=4),
            beta="auto",
        )
        assert 0 < s.beta < 1  # Theorem 4 regime
        r = s.solve(tol=1e-5, max_sweeps=400)
        assert r.converged

    def test_nproc_one_matches_synchronous(self, system):
        A, b, _ = system
        n = A.shape[0]
        s = AsyRGS(A, b, nproc=1, directions=DirectionStream(n, seed=5))
        r = s.run_sweeps(4)
        ref = randomized_gauss_seidel(
            A, b, sweeps=4, directions=DirectionStream(n, seed=5),
            record_history=False,
        )
        np.testing.assert_allclose(r.x, ref.x, rtol=1e-12, atol=1e-14)

    def test_unknown_engine_rejected(self, system):
        A, b, _ = system
        with pytest.raises(ModelError):
            AsyRGS(A, b, engine="warp")

    def test_delay_model_with_phased_rejected(self, system):
        A, b, _ = system
        with pytest.raises(ModelError):
            AsyRGS(A, b, engine="phased", delay_model=UniformDelay(2))

    def test_write_model_with_phased_rejected(self, system):
        A, b, _ = system
        with pytest.raises(ModelError):
            AsyRGS(A, b, engine="phased", write_model=LossyWrites(0.5))


class TestEpochScheme:
    def test_sync_points_counted(self, system):
        A, b, _ = system
        s = AsyRGS(A, b, nproc=4)
        r = s.solve(tol=1e-20, max_sweeps=10, sync_every_sweeps=2)
        assert r.sync_points == 5
        assert r.sweeps == 10

    def test_sync_every_sweeps_validated(self, system):
        A, b, _ = system
        s = AsyRGS(A, b, nproc=4)
        with pytest.raises(ModelError):
            s.solve(tol=1e-4, max_sweeps=10, sync_every_sweeps=0)

    def test_history_per_epoch(self, system):
        A, b, _ = system
        s = AsyRGS(A, b, nproc=4)
        r = s.solve(tol=1e-20, max_sweeps=6, sync_every_sweeps=3)
        assert r.history.iterations == [0, 3, 6]

    def test_budget_respected_when_not_converging(self, system):
        A, b, _ = system
        s = AsyRGS(A, b, nproc=4)
        r = s.solve(tol=1e-30, max_sweeps=7, sync_every_sweeps=3)
        assert r.sweeps == 7
        assert not r.converged


class TestRunSweeps:
    def test_free_running_history(self, system):
        A, b, _ = system
        s = AsyRGS(A, b, nproc=8)
        r = s.run_sweeps(5)
        assert r.sync_points == 0
        assert r.history.iterations == [0, 1, 2, 3, 4, 5]
        assert r.history.values[-1] < r.history.values[0]

    def test_zero_sweeps(self, system):
        A, b, _ = system
        s = AsyRGS(A, b, nproc=2)
        r = s.run_sweeps(0)
        assert r.iterations == 0
        np.testing.assert_array_equal(r.x, np.zeros(A.shape[0]))

    def test_multirhs_run(self, system):
        A, b, _ = system
        B = np.stack([b, 2 * b], axis=1)
        s = AsyRGS(A, B, nproc=4)
        r = s.run_sweeps(30, record_history=False)
        res = B - A.matmat(r.x)
        assert np.linalg.norm(res) / np.linalg.norm(B) < 1e-2


class TestRHSValidation:
    """b is validated once, up front, identically for every engine."""

    @pytest.mark.parametrize("engine", ["phased", "general", "processes"])
    def test_three_dim_b_rejected_at_init(self, system, engine):
        A, b, _ = system
        with pytest.raises(ShapeError, match="expected"):
            AsyRGS(A, np.zeros((A.shape[0], 2, 2)), engine=engine, nproc=2)

    @pytest.mark.parametrize("engine", ["phased", "general", "processes"])
    def test_wrong_length_b_rejected_at_init(self, system, engine):
        A, b, _ = system
        with pytest.raises(ShapeError, match="expected"):
            AsyRGS(A, b[:-3], engine=engine, nproc=2)

    def test_error_message_uniform_across_engines(self, system):
        A, b, _ = system
        messages = set()
        for engine in ("phased", "general", "processes"):
            with pytest.raises(ShapeError) as err:
                AsyRGS(A, b[:-3], engine=engine, nproc=2)
            messages.add(str(err.value))
        assert len(messages) == 1

    def test_block_b_accepted_by_every_engine(self, system):
        A, b, _ = system
        B = np.stack([b, 2 * b], axis=1)
        for engine in ("phased", "general", "processes"):
            assert AsyRGS(A, B, engine=engine, nproc=2).b.shape == B.shape


class TestStepSize:
    def test_auto_beta_consistent(self, system):
        A, b, _ = system
        s = AsyRGS(A, b, nproc=16, beta="auto")
        from repro.core import optimal_beta_consistent, rho_infinity

        assert s.beta == pytest.approx(optimal_beta_consistent(rho_infinity(A), s.tau))

    def test_auto_beta_inconsistent_uses_rho2(self, system):
        """Regression: the inconsistent-read models must get the
        Theorem-4 step from ρ₂ (previously ρ was computed, then
        discarded, and ρ₂ recomputed)."""
        from repro.core import optimal_beta_inconsistent, rho_two

        A, b, _ = system
        expected = optimal_beta_inconsistent(rho_two(A), 1)
        s = AsyRGS(A, b, nproc=2, engine="processes", beta="auto")
        assert s.tau == 1
        assert s.beta == pytest.approx(expected)
        s2 = AsyRGS(
            A, b, engine="general", beta="auto",
            delay_model=InconsistentUniform(1, miss_prob=0.5, seed=4),
        )
        assert s2.beta == pytest.approx(expected)

    def test_explicit_beta_used(self, system):
        A, b, _ = system
        s = AsyRGS(A, b, nproc=4, beta=0.6)
        assert s.beta == 0.6
        r = s.run_sweeps(1, record_history=False)
        assert r.beta == 0.6

    def test_invalid_beta(self, system):
        A, b, _ = system
        with pytest.raises(ModelError):
            AsyRGS(A, b, nproc=4, beta=-0.5)


class TestNonAtomic:
    def test_nonatomic_converges_and_counts(self, system):
        A, b, x_star = system
        s = AsyRGS(A, b, nproc=16, atomic=False)
        r = s.run_sweeps(100, record_history=False)
        assert r.lost_writes > 0
        assert np.abs(r.x - x_star).max() < 1e-4
