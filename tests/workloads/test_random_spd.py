"""Unit tests for random SPD generators."""

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.workloads import (
    banded_spd,
    diagonally_dominant,
    random_unit_diagonal_spd,
)


class TestDiagonallyDominant:
    def test_strict_dominance(self):
        A = diagonally_dominant(60, nnz_per_row=6, margin=0.1, seed=1)
        d = A.to_dense()
        diag = np.abs(np.diag(d))
        offsum = np.abs(d).sum(axis=1) - diag
        assert np.all(diag > offsum)

    def test_spd(self):
        A = diagonally_dominant(40, nnz_per_row=5, margin=0.2, seed=2)
        np.linalg.cholesky(A.to_dense())

    def test_symmetric(self):
        A = diagonally_dominant(50, nnz_per_row=6, margin=0.1, seed=3)
        assert A.is_symmetric(tol=1e-12)

    def test_deterministic(self):
        a = diagonally_dominant(30, seed=4)
        b = diagonally_dominant(30, seed=4)
        np.testing.assert_array_equal(a.to_dense(), b.to_dense())

    def test_isolated_rows_get_floor_diagonal(self):
        A = diagonally_dominant(10, nnz_per_row=1, margin=0.5, seed=5)
        assert np.all(A.diagonal() > 0)

    def test_validation(self):
        with pytest.raises(ModelError):
            diagonally_dominant(0)
        with pytest.raises(ModelError):
            diagonally_dominant(10, margin=0.0)


class TestBanded:
    def test_band_structure(self):
        A = banded_spd(30, bandwidth=3, seed=1)
        d = A.to_dense()
        for i in range(30):
            for j in range(30):
                if abs(i - j) > 3:
                    assert d[i, j] == 0.0

    def test_spd(self):
        A = banded_spd(25, bandwidth=4, decay=0.4, seed=2)
        np.linalg.cholesky(A.to_dense())

    def test_symmetric(self):
        assert banded_spd(20, bandwidth=2, seed=3).is_symmetric(tol=1e-12)

    def test_uniform_interior_rows(self):
        """Banded matrices realize C₂/C₁ ≈ 1 (the reference scenario)."""
        A = banded_spd(50, bandwidth=3, seed=4)
        counts = A.row_nnz()
        interior = counts[3:-3]
        assert interior.min() == interior.max() == 7

    def test_decay(self):
        A = banded_spd(20, bandwidth=4, decay=0.3, seed=5)
        d = np.abs(A.to_dense())
        # Off-diagonal magnitudes must decay with distance from diagonal.
        lvl = [d.diagonal(offset=k)[d.diagonal(offset=k) > 0].max() for k in (1, 4)]
        assert lvl[1] < lvl[0]

    def test_validation(self):
        with pytest.raises(ModelError):
            banded_spd(10, bandwidth=0)
        with pytest.raises(ModelError):
            banded_spd(10, bandwidth=10)
        with pytest.raises(ModelError):
            banded_spd(10, bandwidth=2, decay=1.5)


class TestUnitDiagonalSPD:
    def test_unit_diagonal(self):
        A = random_unit_diagonal_spd(40, seed=1)
        assert A.has_unit_diagonal(tol=1e-12)

    def test_spd_via_gershgorin_margin(self):
        A = random_unit_diagonal_spd(40, offdiag_scale=0.9, seed=2)
        w = np.linalg.eigvalsh(A.to_dense())
        assert w[0] > 0.05  # 1 − 0.9 margin
        assert w[-1] < 1.95

    def test_offdiag_scale_controls_conditioning(self):
        """Closer to 1 ⇒ smaller λ_min ⇒ worse conditioning."""
        mild = random_unit_diagonal_spd(40, offdiag_scale=0.5, seed=3)
        hard = random_unit_diagonal_spd(40, offdiag_scale=0.95, seed=3)
        k_mild = np.linalg.cond(mild.to_dense())
        k_hard = np.linalg.cond(hard.to_dense())
        assert k_hard > k_mild

    def test_symmetric(self):
        assert random_unit_diagonal_spd(30, seed=4).is_symmetric(tol=1e-12)

    def test_validation(self):
        with pytest.raises(ModelError):
            random_unit_diagonal_spd(0)
        with pytest.raises(ModelError):
            random_unit_diagonal_spd(10, offdiag_scale=1.0)
