"""Test package."""
