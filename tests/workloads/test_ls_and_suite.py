"""Unit tests for the least-squares generator and the problem registry."""

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.workloads import (
    available_problems,
    get_problem,
    random_least_squares,
    register_problem,
)
from repro.workloads.suite import Problem


class TestLeastSquaresGenerator:
    def test_full_column_rank(self):
        prob = random_least_squares(40, 15, seed=1)
        assert np.linalg.matrix_rank(prob.A.to_dense()) == 15

    def test_consistent_case(self):
        prob = random_least_squares(30, 12, noise_scale=0.0, seed=2)
        assert prob.consistent
        np.testing.assert_allclose(
            prob.A.matvec(prob.x_generating), prob.b, atol=1e-12
        )

    def test_noisy_case(self):
        prob = random_least_squares(30, 12, noise_scale=0.5, seed=3)
        assert not prob.consistent
        residual = prob.b - prob.A.matvec(prob.x_generating)
        np.testing.assert_allclose(residual, prob.noise, atol=1e-12)

    def test_unit_column_norms(self):
        prob = random_least_squares(50, 20, column_norm=1.0, seed=4)
        d = prob.A.to_dense()
        np.testing.assert_allclose(np.linalg.norm(d, axis=0), 1.0, atol=1e-12)

    def test_custom_column_norm(self):
        prob = random_least_squares(50, 20, column_norm=3.0, seed=5)
        d = prob.A.to_dense()
        np.testing.assert_allclose(np.linalg.norm(d, axis=0), 3.0, atol=1e-12)

    def test_no_normalization(self):
        prob = random_least_squares(30, 10, column_norm=None, seed=6)
        d = prob.A.to_dense()
        norms = np.linalg.norm(d, axis=0)
        assert norms.std() > 1e-6  # genuinely un-normalized

    def test_deterministic(self):
        a = random_least_squares(20, 8, seed=7)
        b = random_least_squares(20, 8, seed=7)
        np.testing.assert_array_equal(a.A.to_dense(), b.A.to_dense())
        np.testing.assert_array_equal(a.b, b.b)

    def test_validation(self):
        with pytest.raises(ModelError):
            random_least_squares(5, 10)
        with pytest.raises(ModelError):
            random_least_squares(10, 0)


class TestSuite:
    def test_registry_nonempty(self):
        names = available_problems()
        assert "social-small" in names
        assert "laplace2d" in names
        assert len(names) >= 6

    @pytest.mark.parametrize(
        "name", ["social-small", "laplace2d", "laplace3d", "diagdom", "banded", "unitdiag"]
    )
    def test_problems_instantiate_and_are_spd_witnessed(self, name):
        prob = get_problem(name)
        assert prob.A.is_square()
        assert prob.A.is_symmetric(tol=1e-9)
        assert np.all(prob.A.diagonal() > 0)
        assert prob.b.shape == (prob.n,)

    def test_manufactured_solutions_verified(self):
        for name in ("laplace2d", "diagdom", "banded", "unitdiag"):
            prob = get_problem(name)
            assert prob.x_star is not None
            np.testing.assert_allclose(
                prob.A.matvec(prob.x_star), prob.b, atol=1e-9
            )

    def test_social_has_rhs_block(self):
        prob = get_problem("social-small")
        assert prob.B is not None
        assert prob.B.shape[0] == prob.n
        assert prob.B.shape[1] >= 2

    def test_unknown_problem(self):
        with pytest.raises(ModelError):
            get_problem("no-such-problem")

    def test_fresh_instances(self):
        a = get_problem("laplace2d")
        b = get_problem("laplace2d")
        assert a is not b
        np.testing.assert_array_equal(a.b, b.b)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ModelError):

            @register_problem("laplace2d")
            def dup() -> Problem:  # pragma: no cover
                raise AssertionError

    def test_meta_has_row_stats(self):
        prob = get_problem("social-small")
        assert "skew_ratio" in prob.meta
        assert prob.meta["kind"] == "social"
