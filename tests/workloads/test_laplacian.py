"""Unit tests for Laplacian generators."""

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.workloads import (
    graph_laplacian,
    laplacian_1d,
    laplacian_2d,
    laplacian_3d,
    unit_diagonal,
)


class TestGridLaplacians:
    def test_1d_structure(self):
        A = laplacian_1d(5)
        d = A.to_dense()
        expected = 2 * np.eye(5) - np.eye(5, k=1) - np.eye(5, k=-1)
        np.testing.assert_array_equal(d, expected)

    def test_2d_row_sums(self):
        """Interior rows sum to 0 except boundary contributions; the
        matrix is weakly diagonally dominant with positive diagonal."""
        A = laplacian_2d(5, 5)
        d = A.to_dense()
        rowsums = d.sum(axis=1)
        assert np.all(rowsums >= -1e-12)
        assert np.all(np.diag(d) == 4.0)

    def test_2d_spd(self):
        A = laplacian_2d(6, 4)
        np.linalg.cholesky(A.to_dense())

    def test_2d_rectangular_grid(self):
        A = laplacian_2d(3, 7)
        assert A.shape == (21, 21)
        assert A.is_symmetric()

    def test_3d_shape_and_diagonal(self):
        A = laplacian_3d(3, 4, 5)
        assert A.shape == (60, 60)
        assert np.all(A.diagonal() == 6.0)

    def test_3d_spd(self):
        A = laplacian_3d(3, 3, 3)
        np.linalg.cholesky(A.to_dense())

    def test_3d_nnz_count(self):
        """Interior stencil width 7; total nnz = 7n − 2(boundary faces)."""
        nx = ny = nz = 4
        A = laplacian_3d(nx, ny, nz)
        expected = 7 * 64 - 2 * (3 * 16)  # each missing neighbor kills 2 entries
        assert A.nnz == expected

    def test_reference_scenario_band(self):
        """Grid Laplacians realize the paper's C₂/C₁ small-ratio regime."""
        from repro.sparse import row_nnz_statistics

        stats = row_nnz_statistics(laplacian_3d(6, 6, 6))
        assert stats["skew_ratio"] <= 7 / 4 + 1e-12

    def test_invalid_sizes(self):
        with pytest.raises(ModelError):
            laplacian_1d(0)
        with pytest.raises(ModelError):
            laplacian_2d(0, 3)
        with pytest.raises(ModelError):
            laplacian_3d(2, 2, 0)


class TestGraphLaplacian:
    def test_path_graph_matches_1d(self):
        edges = [(i, i + 1) for i in range(4)]
        L = graph_laplacian(edges, 5, shift=0.0 + 1e-9)
        expected = laplacian_1d(5).to_dense()
        expected[0, 0] = 1.0 + 1e-9
        expected[4, 4] = 1.0 + 1e-9
        expected[1, 1] = 2.0 + 1e-9
        expected[2, 2] = 2.0 + 1e-9
        expected[3, 3] = 2.0 + 1e-9
        np.testing.assert_allclose(L.to_dense(), expected, atol=1e-12)

    def test_networkx_graph_accepted(self):
        import networkx as nx

        G = nx.cycle_graph(6)
        L = graph_laplacian(G, 6, shift=0.01)
        assert L.is_symmetric()
        np.testing.assert_allclose(L.diagonal(), np.full(6, 2.01))

    def test_weighted_edges(self):
        L = graph_laplacian([(0, 1)], 2, shift=0.1, weights=[2.5])
        np.testing.assert_allclose(
            L.to_dense(), [[2.6, -2.5], [-2.5, 2.6]], atol=1e-12
        )

    def test_self_loops_ignored(self):
        L = graph_laplacian([(0, 0), (0, 1)], 2, shift=0.1)
        assert L.get(0, 0) == pytest.approx(1.1)

    def test_spd_with_shift(self):
        import networkx as nx

        G = nx.random_regular_graph(3, 12, seed=1)
        L = graph_laplacian(G, 12, shift=0.05)
        np.linalg.cholesky(L.to_dense())

    def test_validation(self):
        with pytest.raises(ModelError):
            graph_laplacian([], 0)
        with pytest.raises(ModelError):
            graph_laplacian([(0, 1)], 2, shift=0.0)
        with pytest.raises(ModelError):
            graph_laplacian([(0, 1)], 2, weights=[1.0, 2.0])
        with pytest.raises(ModelError):
            graph_laplacian([(0, 1)], 2, weights=[-1.0])


class TestUnitDiagonal:
    def test_rescales_to_unit(self):
        A = unit_diagonal(laplacian_2d(4, 4))
        assert A.has_unit_diagonal(tol=1e-12)

    def test_preserves_spd(self):
        A = unit_diagonal(laplacian_2d(4, 4))
        np.linalg.cholesky(A.to_dense())
