"""Unit tests for the synthetic social-media workload generator."""

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.workloads import social_media_problem, term_document_matrix


class TestTermDocumentMatrix:
    def test_shape_and_sparsity(self):
        D = term_document_matrix(n_terms=50, n_docs=200, mean_doc_len=8, seed=1)
        assert D.shape == (200, 50)
        assert 0 < D.nnz < 200 * 50

    def test_deterministic(self):
        a = term_document_matrix(n_terms=30, n_docs=100, seed=7)
        b = term_document_matrix(n_terms=30, n_docs=100, seed=7)
        np.testing.assert_array_equal(a.data, b.data)
        np.testing.assert_array_equal(a.indices, b.indices)

    def test_seed_changes_matrix(self):
        a = term_document_matrix(n_terms=30, n_docs=100, seed=7)
        b = term_document_matrix(n_terms=30, n_docs=100, seed=8)
        assert a.nnz != b.nnz or not np.array_equal(a.data, b.data)

    def test_frequencies_positive_integers(self):
        D = term_document_matrix(n_terms=40, n_docs=150, seed=2)
        assert np.all(D.data >= 1.0)
        np.testing.assert_array_equal(D.data, np.rint(D.data))

    def test_zipf_head_terms_most_popular(self):
        """Term 0 (the Zipf head) must occur in far more documents than a
        mid-tail term."""
        D = term_document_matrix(n_terms=100, n_docs=800, mean_doc_len=15, seed=3)
        Dt = D.transpose()
        docs_with = Dt.row_nnz()
        assert docs_with[0] > 4 * max(docs_with[50], 1)

    def test_every_document_nonempty(self):
        D = term_document_matrix(n_terms=30, n_docs=120, mean_doc_len=5, seed=4)
        assert np.all(D.row_nnz() >= 1)

    def test_validation(self):
        with pytest.raises(ModelError):
            term_document_matrix(n_terms=0, n_docs=10)
        with pytest.raises(ModelError):
            term_document_matrix(n_terms=10, n_docs=10, mean_doc_len=-1)
        with pytest.raises(ModelError):
            term_document_matrix(n_terms=10, n_docs=10, freq_p=1.5)


class TestSocialMediaProblem:
    @pytest.fixture(scope="class")
    def prob(self):
        return social_media_problem(
            n_terms=150, n_docs=400, n_labels=3, mean_doc_len=6, seed=5
        )

    def test_gram_is_spd_witnesses(self, prob):
        assert prob.G.is_symmetric(tol=1e-10)
        assert np.all(prob.G.diagonal() > 0)
        # Ridge guarantees positive definiteness: check via Cholesky.
        np.linalg.cholesky(prob.G.to_dense())

    def test_gram_matches_definition(self, prob):
        D = prob.D.to_dense()
        expected = D.T @ D + prob.ridge * np.eye(prob.n)
        np.testing.assert_allclose(prob.G.to_dense(), expected, atol=1e-10)

    def test_rhs_block_shape(self, prob):
        assert prob.B.shape == (prob.n, 3)
        assert np.linalg.norm(prob.B) > 0

    def test_rhs_is_label_image(self, prob):
        """Every RHS column must lie in the row space of Dᵀ — it is Dᵀy
        for ±1 labels."""
        col = prob.B[:, 0]
        # Dᵀ y with y ∈ {±1}^m: entries bounded by column abs sums.
        bound = np.abs(prob.D.to_dense()).sum(axis=0)
        assert np.all(np.abs(col) <= bound + 1e-12)

    def test_row_skew_present(self, prob):
        """The defining feature of the paper's matrix: highly skewed row
        sizes (a few near-dense rows)."""
        assert prob.stats["skew_ratio"] > 3.0
        assert prob.stats["max"] > 0.5 * prob.n

    def test_labels_deterministic(self):
        a = social_media_problem(n_terms=40, n_docs=150, n_labels=2, seed=9)
        b = social_media_problem(n_terms=40, n_docs=150, n_labels=2, seed=9)
        np.testing.assert_array_equal(a.B, b.B)

    def test_validation(self):
        with pytest.raises(ModelError):
            social_media_problem(n_terms=10, n_docs=10, n_labels=0)
        with pytest.raises(ModelError):
            social_media_problem(n_terms=10, n_docs=10, ridge=0.0)
