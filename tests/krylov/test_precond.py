"""Unit tests for the preconditioner implementations."""

import numpy as np
import pytest

from repro.exceptions import ModelError, ShapeError
from repro.krylov import (
    AsyRGSPreconditioner,
    IdentityPreconditioner,
    JacobiPreconditioner,
)
from repro.sparse import CSRMatrix
from repro.workloads import laplacian_2d, random_unit_diagonal_spd


@pytest.fixture(scope="module")
def A():
    return random_unit_diagonal_spd(40, nnz_per_row=5, offdiag_scale=0.7, seed=12)


class TestIdentity:
    def test_returns_copy(self):
        M = IdentityPreconditioner()
        r = np.array([1.0, 2.0])
        z = M.apply(r)
        np.testing.assert_array_equal(z, r)
        z[0] = 99.0
        assert r[0] == 1.0

    def test_deterministic_flag(self):
        assert IdentityPreconditioner().deterministic


class TestJacobi:
    def test_divides_by_diagonal(self):
        A = laplacian_2d(4, 4)
        M = JacobiPreconditioner(A)
        r = np.ones(16)
        np.testing.assert_allclose(M.apply(r), r / 4.0)

    def test_nonpositive_diagonal_rejected(self):
        bad = CSRMatrix.from_dense(np.diag([1.0, 0.0]))
        with pytest.raises(ModelError):
            JacobiPreconditioner(bad)

    def test_shape_check(self, A):
        M = JacobiPreconditioner(A)
        with pytest.raises(ShapeError):
            M.apply(np.ones(3))


class TestAsyRGSPrecond:
    def test_apply_approximates_inverse(self, A):
        """Enough inner sweeps must make M ≈ A⁻¹ in the residual sense."""
        M = AsyRGSPreconditioner(A, sweeps=40, nproc=2)
        r = np.ones(A.shape[0])
        z = M.apply(r)
        residual = np.linalg.norm(r - A.matvec(z)) / np.linalg.norm(r)
        assert residual < 0.05

    def test_nondeterministic_flag(self, A):
        assert not AsyRGSPreconditioner(A, sweeps=1).deterministic

    def test_applications_consume_fresh_stream_segments(self, A):
        """Two successive applications on the same residual must differ —
        the operator is a fresh random sample each time."""
        M = AsyRGSPreconditioner(A, sweeps=1, nproc=4)
        r = np.ones(A.shape[0])
        z1 = M.apply(r)
        z2 = M.apply(r)
        assert not np.array_equal(z1, z2)
        assert M.applications == 2

    def test_identically_configured_preconditioners_replay(self, A):
        r = np.ones(A.shape[0])
        z_a = AsyRGSPreconditioner(A, sweeps=2, nproc=4, jitter=1).apply(r)
        z_b = AsyRGSPreconditioner(A, sweeps=2, nproc=4, jitter=1).apply(r)
        np.testing.assert_array_equal(z_a, z_b)

    def test_schedule_seed_varies_result(self, A):
        r = np.ones(A.shape[0])
        z_a = AsyRGSPreconditioner(A, sweeps=2, nproc=8, jitter=4, schedule_seed=1).apply(r)
        z_b = AsyRGSPreconditioner(A, sweeps=2, nproc=8, jitter=4, schedule_seed=2).apply(r)
        assert not np.array_equal(z_a, z_b)

    def test_work_accounting(self, A):
        M = AsyRGSPreconditioner(A, sweeps=3, nproc=2)
        n = A.shape[0]
        M.apply(np.ones(n))
        iters, nnz = M.work_per_application()
        assert iters == 3 * n
        assert nnz > 0
        assert M.total_iterations == 3 * n

    def test_work_estimate_before_first_application(self, A):
        M = AsyRGSPreconditioner(A, sweeps=2, nproc=2)
        iters, nnz = M.work_per_application()
        assert iters == 2 * A.shape[0]
        assert nnz == 2 * A.nnz

    def test_validation(self, A):
        with pytest.raises(ModelError):
            AsyRGSPreconditioner(A, sweeps=0)
        with pytest.raises(ShapeError):
            AsyRGSPreconditioner(CSRMatrix.from_dense(np.ones((2, 3))))
        M = AsyRGSPreconditioner(A, sweeps=1)
        with pytest.raises(ShapeError):
            M.apply(np.ones(3))

    def test_repr(self, A):
        assert "sweeps=2" in repr(AsyRGSPreconditioner(A, sweeps=2))
