"""Test package."""
