"""Unit tests for flexible conjugate gradients."""

import numpy as np
import pytest

from repro.exceptions import ConvergenceError, ShapeError
from repro.krylov import (
    AsyRGSPreconditioner,
    IdentityPreconditioner,
    JacobiPreconditioner,
    conjugate_gradient,
    flexible_conjugate_gradient,
)
from repro.workloads import laplacian_2d, social_media_problem

from ..conftest import manufactured_system


@pytest.fixture(scope="module")
def system():
    A = laplacian_2d(8, 8)
    b, x_star = manufactured_system(A, seed=5)
    return A, b, x_star


@pytest.fixture(scope="module")
def social():
    prob = social_media_problem(n_terms=90, n_docs=450, n_labels=2, seed=4)
    return prob.G, prob.B[:, 0].copy()


class TestIdentityPreconditioner:
    def test_matches_cg_trajectory(self, system):
        """With a fixed SPD preconditioner, FCG and CG generate the same
        iterates (the explicit orthogonalization reduces to the short
        recurrence in exact arithmetic)."""
        A, b, _ = system
        fcg = flexible_conjugate_gradient(
            A, b, preconditioner=IdentityPreconditioner(), tol=1e-10
        )
        cg = conjugate_gradient(A, b, tol=1e-10)
        assert fcg.converged and cg.converged
        assert abs(fcg.iterations - cg.iterations) <= 1
        np.testing.assert_allclose(fcg.x, cg.x, atol=1e-7)

    def test_jacobi_preconditioner(self, system):
        A, b, x_star = system
        r = flexible_conjugate_gradient(
            A, b, preconditioner=JacobiPreconditioner(A), tol=1e-10
        )
        assert r.converged
        np.testing.assert_allclose(r.x, x_star, atol=1e-7)


class TestAsyRGSPreconditioner:
    def test_converges_with_async_preconditioner(self, social):
        A, b = social
        M = AsyRGSPreconditioner(A, sweeps=2, nproc=8, jitter=2)
        r = flexible_conjugate_gradient(A, b, preconditioner=M, tol=1e-8,
                                        max_iterations=500)
        assert r.converged
        rel = np.linalg.norm(b - A.matvec(r.x)) / np.linalg.norm(b)
        assert rel < 1e-8

    def test_fewer_outer_iterations_than_plain_cg(self, social):
        A, b = social
        M = AsyRGSPreconditioner(A, sweeps=4, nproc=4)
        fcg = flexible_conjugate_gradient(A, b, preconditioner=M, tol=1e-8,
                                          max_iterations=1000)
        cg = conjugate_gradient(A, b, tol=1e-8, max_iterations=5000)
        assert fcg.converged and cg.converged
        assert fcg.iterations < cg.iterations

    def test_more_inner_sweeps_fewer_outer_iterations(self, social):
        """The paper's Table 1 trade-off: outer iterations decrease as
        inner sweeps increase."""
        A, b = social
        outer = {}
        for sweeps in (1, 8):
            M = AsyRGSPreconditioner(A, sweeps=sweeps, nproc=4)
            r = flexible_conjugate_gradient(
                A, b, preconditioner=M, tol=1e-8, max_iterations=1000
            )
            assert r.converged
            outer[sweeps] = r.iterations
        assert outer[8] < outer[1]

    def test_matrix_applications_accounting(self, social):
        A, b = social
        M = AsyRGSPreconditioner(A, sweeps=3, nproc=2)
        r = flexible_conjugate_gradient(A, b, preconditioner=M, tol=1e-8,
                                        max_iterations=500)
        assert r.matrix_applications == r.iterations * 4  # outer × (inner + 1)

    def test_truncated_window_still_converges(self, social):
        A, b = social
        M = AsyRGSPreconditioner(A, sweeps=2, nproc=4)
        r = flexible_conjugate_gradient(
            A, b, preconditioner=M, tol=1e-8, truncation=2, max_iterations=2000
        )
        assert r.converged


class TestValidation:
    def test_raise_on_stall(self, system):
        A, b, _ = system
        with pytest.raises(ConvergenceError):
            flexible_conjugate_gradient(
                A, b, tol=1e-30, max_iterations=2, raise_on_stall=True
            )

    def test_shape_checks(self, system):
        A, b, _ = system
        with pytest.raises(ShapeError):
            flexible_conjugate_gradient(A, np.ones(3))

    def test_zero_rhs_converges_immediately(self, system):
        A, _, _ = system
        r = flexible_conjugate_gradient(A, np.zeros(A.shape[0]), tol=1e-8)
        assert r.converged
        assert r.iterations == 0

    def test_rectangular_rejected(self):
        from repro.sparse import CSRMatrix

        R = CSRMatrix.from_dense(np.ones((2, 3)))
        with pytest.raises(ShapeError):
            flexible_conjugate_gradient(R, np.ones(2))
