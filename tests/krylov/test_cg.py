"""Unit tests for conjugate gradients (single and blocked)."""

import numpy as np
import pytest

from repro.exceptions import ConvergenceError, ModelError, ShapeError
from repro.krylov import (
    JacobiPreconditioner,
    block_conjugate_gradient,
    conjugate_gradient,
)
from repro.sparse import CSRMatrix
from repro.workloads import laplacian_2d, random_unit_diagonal_spd

from ..conftest import manufactured_system


@pytest.fixture(scope="module")
def system():
    A = laplacian_2d(9, 9)
    b, x_star = manufactured_system(A, seed=1)
    return A, b, x_star


class TestCG:
    def test_solves_to_tolerance(self, system):
        A, b, x_star = system
        r = conjugate_gradient(A, b, tol=1e-10)
        assert r.converged
        assert np.abs(r.x - x_star).max() < 1e-8

    def test_exact_in_n_iterations(self, system):
        """CG terminates in at most n steps in exact arithmetic; with a
        modest tolerance it must take far fewer than n here."""
        A, b, _ = system
        r = conjugate_gradient(A, b, tol=1e-10)
        assert r.iterations < A.shape[0]

    def test_residual_history_shape(self, system):
        A, b, _ = system
        r = conjugate_gradient(A, b, tol=1e-8)
        assert len(r.residuals) == r.iterations + 1
        assert r.residuals[-1] < 1e-8

    def test_initial_guess(self, system):
        A, b, x_star = system
        r = conjugate_gradient(A, b, x0=x_star, tol=1e-8)
        assert r.iterations == 0
        assert r.converged

    def test_warm_start_fewer_iterations(self, system):
        A, b, x_star = system
        cold = conjugate_gradient(A, b, tol=1e-10)
        warm = conjugate_gradient(
            A, b, x0=x_star + 1e-6 * np.ones(A.shape[0]), tol=1e-10
        )
        assert warm.iterations < cold.iterations

    def test_jacobi_preconditioner_helps_scaled_system(self):
        """On a badly diagonally scaled SPD system, Jacobi preconditioning
        must reduce the iteration count."""
        base = laplacian_2d(8, 8)
        n = base.shape[0]
        scale = np.logspace(0, 3, n)
        A = base.scale_rows(scale).scale_cols(scale)
        b, _ = manufactured_system(A, seed=3)
        plain = conjugate_gradient(A, b, tol=1e-8, max_iterations=5000)
        precond = conjugate_gradient(
            A, b, tol=1e-8, max_iterations=5000,
            preconditioner=JacobiPreconditioner(A),
        )
        assert precond.iterations < plain.iterations

    def test_max_iterations_respected(self, system):
        A, b, _ = system
        r = conjugate_gradient(A, b, tol=1e-30, max_iterations=3)
        assert r.iterations == 3
        assert not r.converged

    def test_raise_on_stall(self, system):
        A, b, _ = system
        with pytest.raises(ConvergenceError):
            conjugate_gradient(A, b, tol=1e-30, max_iterations=2, raise_on_stall=True)

    def test_indefinite_detected(self):
        M = CSRMatrix.from_dense(np.diag([1.0, -1.0]))
        with pytest.raises(ModelError):
            conjugate_gradient(M, np.array([1.0, 1.0]), tol=1e-8)

    def test_shape_checks(self, system):
        A, b, _ = system
        with pytest.raises(ShapeError):
            conjugate_gradient(A, np.ones(3))
        with pytest.raises(ShapeError):
            conjugate_gradient(A, b, x0=np.ones(2))

    def test_rectangular_rejected(self):
        R = CSRMatrix.from_dense(np.ones((2, 3)))
        with pytest.raises(ShapeError):
            conjugate_gradient(R, np.ones(2))


class TestBlockCG:
    def test_block_matches_columnwise(self, system):
        A, b, _ = system
        n = A.shape[0]
        B = np.stack([b, np.ones(n), np.arange(n, dtype=float)], axis=1)
        blk = block_conjugate_gradient(A, B, tol=1e-9, max_iterations=500)
        assert blk.converged
        for j in range(3):
            single = conjugate_gradient(A, B[:, j], tol=1e-9)
            np.testing.assert_allclose(blk.x[:, j], single.x, atol=1e-6)

    def test_block_residual_decreases(self, system):
        A, b, _ = system
        B = np.stack([b, 2 * b], axis=1)
        r = block_conjugate_gradient(A, B, tol=1e-10)
        assert r.residuals[-1] < r.residuals[0]

    def test_frozen_columns_do_not_blow_up(self):
        """One column converging much earlier than another must not
        destabilize the block recurrence."""
        A = random_unit_diagonal_spd(40, nnz_per_row=4, offdiag_scale=0.5, seed=9)
        n = A.shape[0]
        easy = A.matvec(np.ones(n))
        b2, _ = manufactured_system(A, seed=10)
        B = np.stack([1e-8 * easy, b2], axis=1)
        r = block_conjugate_gradient(A, B, tol=1e-10, max_iterations=400)
        assert r.converged
        assert np.isfinite(r.x).all()

    def test_block_shape_checks(self, system):
        A, _, _ = system
        with pytest.raises(ShapeError):
            block_conjugate_gradient(A, np.ones(A.shape[0]))  # not 2-D
        with pytest.raises(ShapeError):
            block_conjugate_gradient(A, np.ones((3, 2)))

    def test_block_x0(self, system):
        A, b, x_star = system
        B = x_star[:, None] * np.array([[1.0]])
        Bm = A.matmat(B)
        r = block_conjugate_gradient(A, Bm, X0=B, tol=1e-8)
        assert r.iterations == 0
