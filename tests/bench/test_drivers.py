"""Unit tests for the experiment drivers (small configurations).

These verify the drivers' mechanics — result structure, persistence,
determinism — at test-sized workloads; the paper-shape assertions live in
``benchmarks/``.
"""

import json

import numpy as np
import pytest

from repro.bench import (
    run_beta_sweep,
    run_consistency_gap,
    run_delay_schedules,
    run_direction_strategies,
    run_fcg_once,
    run_fig1,
    run_fig2_center,
    run_fig2_left,
    run_fig2_right,
    run_table1,
    run_tau_sweep,
    run_theory_envelope,
)
from repro.bench.reporting import render_series, render_table, results_dir, save_json


@pytest.fixture(autouse=True)
def tmp_results(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RESULTS", str(tmp_path / "results"))
    return tmp_path / "results"


SMALL_THREADS = (1, 4, 16)


class TestReporting:
    def test_render_table_alignment(self):
        out = render_table(["a", "bb"], [[1, 2.5], [300, 0.001]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_render_series(self):
        out = render_series("s", [1, 2], [0.5, 0.25], x_label="n", y_label="v")
        assert "n" in out and "v" in out

    def test_save_json_roundtrip(self, tmp_results):
        path = save_json("unit", {"a": np.float64(1.5), "b": np.arange(3)})
        data = json.loads(path.read_text())
        assert data["a"] == 1.5
        assert data["b"] == [0, 1, 2]

    def test_results_dir_env_override(self, tmp_results):
        assert str(results_dir()) == str(tmp_results)


class TestFigureDrivers:
    def test_fig1_small(self, tmp_results):
        r = run_fig1("social-small", sweeps=15)
        assert len(r.sweeps) == len(r.rgs_residuals) == len(r.cg_residuals)
        assert r.rgs_residuals[-1] < r.rgs_residuals[0]
        assert (tmp_results / "fig1_convergence.json").exists()
        assert "Figure 1" in r.table()

    def test_fig2_left_small(self, tmp_results):
        r = run_fig2_left("social-small", threads=SMALL_THREADS, sweeps=3)
        assert r.asyrgs_speedup[0] == pytest.approx(1.0)
        assert r.asyrgs_speedup[-1] > 1.0
        assert all(t > 0 for t in r.cg_time)
        assert "threads" in r.table()

    def test_fig2_center_small(self, tmp_results):
        r = run_fig2_center("social-small", threads=SMALL_THREADS, sweeps=3)
        assert len(r.asyrgs_residual) == len(SMALL_THREADS)
        assert r.sync_residual > 0
        assert all(v > 0 for v in r.nonatomic_residual)

    def test_fig2_right_small(self, tmp_results):
        r = run_fig2_right("social-small", threads=SMALL_THREADS, sweeps=3)
        assert all(np.isfinite(v) for v in r.asyrgs_error)
        assert r.sync_error > 0

    def test_fcg_once_accounting(self, tmp_results):
        from repro.workloads import get_problem

        prob = get_problem("social-small")
        run = run_fcg_once(prob.A, prob.b, threads=8, inner_sweeps=2, tol=1e-6)
        assert run.converged
        assert run.mat_ops == run.outer_iterations * 3
        assert run.modeled_time > 0
        assert run.mat_ops_per_second > 0

    def test_fcg_run_id_varies_schedule_only(self, tmp_results):
        from repro.workloads import get_problem

        prob = get_problem("social-small")
        a = run_fcg_once(prob.A, prob.b, threads=8, inner_sweeps=2, tol=1e-6, run_id=0)
        b = run_fcg_once(prob.A, prob.b, threads=8, inner_sweeps=2, tol=1e-6, run_id=1)
        # Both converge; iteration counts may differ slightly (pure
        # scheduling nondeterminism).
        assert a.converged and b.converged
        assert abs(a.outer_iterations - b.outer_iterations) < 0.5 * a.outer_iterations

    def test_table1_small(self, tmp_results):
        r = run_table1(
            "social-small", threads=16, sweep_counts=(4, 1), repetitions=1, tol=1e-6
        )
        assert [row["inner_sweeps"] for row in r.rows] == [4, 1]
        assert all(row["converged"] for row in r.rows)
        assert r.rows[0]["outer_iterations"] < r.rows[1]["outer_iterations"]
        assert "Inner sweeps" in r.table()
        assert r.best_time_sweeps() in (4, 1)


class TestAblationDrivers:
    def test_tau_sweep_small(self, tmp_results):
        r = run_tau_sweep("unitdiag", taus=(0, 16), sweeps=5)
        assert len(r.errors) == 2
        assert all(np.isfinite(e) for e in r.errors)

    def test_beta_sweep_small(self, tmp_results):
        r = run_beta_sweep("unitdiag", tau=8, betas=(0.5, 1.0), sweeps=5)
        assert len(r.errors) == 2
        assert 0 < r.beta_theory <= 1
        assert r.empirical_best() in (0.5, 1.0)

    def test_consistency_gap_small(self, tmp_results):
        r = run_consistency_gap("unitdiag", taus=(4,), sweeps=5)
        assert len(r.consistent_errors) == 1
        assert len(r.inconsistent_errors) == 1

    def test_delay_schedules_small(self, tmp_results):
        r = run_delay_schedules("unitdiag", tau=16, sweeps=5, n_seeds=2)
        assert set(r.schedule_errors) == {"zero", "uniform", "adversarial"}

    def test_theory_envelope_small(self, tmp_results):
        r = run_theory_envelope("unitdiag", tau=4, epochs=2, n_seeds=2)
        assert r.measured[0] == pytest.approx(1.0)
        assert len(r.bound) == 3
        assert all(m <= b + 1e-9 for m, b in zip(r.measured, r.bound))

    def test_direction_strategies_small(self, tmp_results):
        r = run_direction_strategies("unitdiag", sweeps=5)
        assert set(r.strategy_errors) == {"iid-uniform", "cyclic", "permuted-cyclic"}


class TestFig3Driver:
    def test_fig3_small(self, tmp_results):
        from repro.bench import run_fig3

        r = run_fig3(
            "social-small", threads=(1, 8), inner_sweeps=(2, 4),
            repetitions=2, tol=1e-6,
        )
        assert r.threads == [1, 8]
        for s in (2, 4):
            assert len(r.times[s]) == 2
            assert r.times[s][1] < r.times[s][0]  # faster with more threads
            assert all(o > 0 for o in r.outer[s])
            lo, hi = r.spread[s][1]
            assert lo <= r.outer[s][1] <= hi
        # More inner sweeps, fewer outer iterations.
        assert r.outer[4][0] < r.outer[2][0]
        assert "Figure 3" in r.table()
        assert (tmp_results / "fig3_fcg.json").exists()
