"""Test package."""
