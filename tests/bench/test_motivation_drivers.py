"""Unit tests for the motivation/extensions experiment drivers."""

import pytest

from repro.bench import run_extensions, run_motivation


@pytest.fixture(autouse=True)
def tmp_results(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RESULTS", str(tmp_path / "results"))


class TestMotivationDriver:
    @pytest.fixture(scope="class")
    def result(self):
        return run_motivation(sweeps=200, tol=1e-6)

    def test_spectral_thresholds(self, result):
        assert result.rho_abs_dominant < 1.0
        assert result.rho_abs_non_dominant > 1.0

    def test_all_methods_reported(self, result):
        expected = {"Jacobi (sync)", "chaotic relaxation", "RGS (sync)", "AsyRGS (async)"}
        assert set(result.dominant) == expected
        assert set(result.non_dominant) == expected

    def test_dichotomy(self, result):
        assert result.non_dominant["Jacobi (sync)"][1]  # diverged
        assert result.non_dominant["RGS (sync)"][0]  # converged
        assert result.non_dominant["AsyRGS (async)"][0]

    def test_table_renders(self, result):
        table = result.table()
        assert "DIVERGED" in table
        assert "Motivation" in table


class TestExtensionsDriver:
    @pytest.fixture(scope="class")
    def result(self):
        return run_extensions(tol=1e-4)

    def test_owner_computes_converges(self, result):
        assert result.unrestricted_sweeps > 0
        assert all(v > 0 for v in result.owner_sweeps.values())

    def test_delay_stats_complete(self, result):
        for key in ("mean", "median", "q95", "max_observed", "hard_bound"):
            assert key in result.delay_stats

    def test_realistic_vs_worstcase_errors(self, result):
        assert result.error_rowcost <= 1.1 * result.error_worstcase

    def test_table_renders(self, result):
        table = result.table()
        assert "owner-computes" in table
        assert "hard_bound" in table
