"""Shared fixtures and oracles for the test suite.

SciPy appears ONLY here and in tests, as a cross-check oracle for the
from-scratch sparse substrate — the library itself never imports it.
"""

from __future__ import annotations

import numpy as np
import pytest


def pytest_addoption(parser):
    """Knobs for the deterministic simulation suite (tests/serve/simtest):
    replay one failing schedule, or scale the exploration sweeps."""
    parser.addoption(
        "--sim-seed",
        type=int,
        default=None,
        help="replay exactly this simulation schedule seed in every "
        "exploration sweep (printed by a failing simtest run)",
    )
    parser.addoption(
        "--sim-count",
        type=int,
        default=None,
        help="override the number of seeds each simulation exploration "
        "sweep runs (CI turns this up; quick local runs turn it down)",
    )

from repro.rng import CounterRNG
from repro.sparse import CSRMatrix
from repro.workloads import (
    laplacian_2d,
    random_unit_diagonal_spd,
    social_media_problem,
)


def to_scipy(A: CSRMatrix):
    """Convert a repro CSR matrix to a scipy.sparse.csr_matrix oracle."""
    import scipy.sparse as sp

    return sp.csr_matrix(
        (A.data.copy(), A.indices.copy(), A.indptr.copy()), shape=A.shape
    )


def random_dense(nrows: int, ncols: int, seed: int = 0, density: float = 0.4):
    """Deterministic random dense array with structural zeros."""
    rng = CounterRNG(seed, stream=0x7E57)
    vals = rng.normal(0, nrows * ncols).reshape(nrows, ncols)
    mask = rng.split(1).uniform(0, nrows * ncols).reshape(nrows, ncols) < density
    return np.where(mask, vals, 0.0)


def manufactured_system(A: CSRMatrix, seed: int = 0):
    """``(b, x_star)`` with ``b = A x_star`` for a known random solution."""
    x_star = CounterRNG(seed, stream=0xFAB).normal(0, A.shape[0])
    return A.matvec(x_star), x_star


@pytest.fixture(scope="session")
def laplace_small() -> CSRMatrix:
    """8×8 grid Laplacian (n = 64): well-conditioned SPD."""
    return laplacian_2d(8, 8)


@pytest.fixture(scope="session")
def unitdiag_small() -> CSRMatrix:
    """Unit-diagonal random SPD, n = 60."""
    return random_unit_diagonal_spd(60, nnz_per_row=5, offdiag_scale=0.8, seed=5)


@pytest.fixture(scope="session")
def social_tiny():
    """Tiny social-media Gram problem (n = 80) with a 3-column RHS block."""
    return social_media_problem(
        n_terms=80, n_docs=400, n_labels=3, mean_doc_len=10.0, seed=2
    )
