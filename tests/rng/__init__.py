"""Test package."""
