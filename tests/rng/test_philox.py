"""Unit tests for the Philox-4x32-10 generator.

The known-answer vectors come from the Random123 distribution's
``kat_vectors`` file (philox4x32, 10 rounds).
"""

import numpy as np
import pytest

from repro.rng import CounterRNG, philox4x32


class TestKnownAnswers:
    def test_zero_counter_zero_key(self):
        out = philox4x32(
            np.zeros((1, 4), dtype=np.uint32), np.zeros(2, dtype=np.uint32)
        )
        np.testing.assert_array_equal(
            out[0], np.array([0x6627E8D5, 0xE169C58D, 0xBC57AC4C, 0x9B00DBD8], dtype=np.uint32)
        )

    def test_all_ones_counter_and_key(self):
        out = philox4x32(
            np.full((1, 4), 0xFFFFFFFF, dtype=np.uint32),
            np.full(2, 0xFFFFFFFF, dtype=np.uint32),
        )
        np.testing.assert_array_equal(
            out[0], np.array([0x408F276D, 0x41C83B0E, 0xA20BC7C6, 0x6D5451FD], dtype=np.uint32)
        )

    def test_pi_digits_vector(self):
        ctr = np.array(
            [[0x243F6A88, 0x85A308D3, 0x13198A2E, 0x03707344]], dtype=np.uint32
        )
        key = np.array([0xA4093822, 0x299F31D0], dtype=np.uint32)
        out = philox4x32(ctr, key)
        np.testing.assert_array_equal(
            out[0], np.array([0xD16CFE09, 0x94FDCCEB, 0x5001E420, 0x24126EA1], dtype=np.uint32)
        )


class TestBlockApi:
    def test_batch_matches_individual(self):
        key = np.array([123, 456], dtype=np.uint32)
        ctrs = np.arange(40, dtype=np.uint32).reshape(10, 4)
        batch = philox4x32(ctrs, key)
        for i in range(10):
            single = philox4x32(ctrs[i : i + 1], key)
            np.testing.assert_array_equal(batch[i], single[0])

    def test_bad_counter_shape_rejected(self):
        with pytest.raises(ValueError):
            philox4x32(np.zeros((4,), dtype=np.uint32), np.zeros(2, dtype=np.uint32))

    def test_bad_key_shape_rejected(self):
        with pytest.raises(ValueError):
            philox4x32(np.zeros((1, 4), dtype=np.uint32), np.zeros(3, dtype=np.uint32))

    def test_is_a_bijection_on_samples(self):
        """Distinct counters must give distinct outputs (Philox is a
        bijection for every key)."""
        key = np.array([7, 9], dtype=np.uint32)
        ctrs = np.zeros((1000, 4), dtype=np.uint32)
        ctrs[:, 0] = np.arange(1000, dtype=np.uint32)
        out = philox4x32(ctrs, key)
        as_tuples = {tuple(row) for row in out.tolist()}
        assert len(as_tuples) == 1000

    def test_no_warnings_emitted(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            philox4x32(np.full((3, 4), 0xFFFFFFFF, dtype=np.uint32),
                       np.full(2, 0xFFFFFFFF, dtype=np.uint32))


class TestCounterRNG:
    def test_random_access_consistency(self):
        """Reading a range must equal reading its pieces."""
        rng = CounterRNG(42)
        whole = rng.uint32(0, 100)
        parts = np.concatenate([rng.uint32(0, 37), rng.uint32(37, 63)])
        np.testing.assert_array_equal(whole, parts)

    def test_unaligned_offsets(self):
        rng = CounterRNG(7)
        full = rng.uint32(0, 64)
        for start in (1, 2, 3, 5, 13):
            np.testing.assert_array_equal(rng.uint32(start, 20), full[start : start + 20])

    def test_different_seeds_differ(self):
        a = CounterRNG(1).uint32(0, 32)
        b = CounterRNG(2).uint32(0, 32)
        assert not np.array_equal(a, b)

    def test_streams_differ(self):
        a = CounterRNG(1, stream=0).uint32(0, 32)
        b = CounterRNG(1, stream=1).uint32(0, 32)
        assert not np.array_equal(a, b)

    def test_split_deterministic(self):
        a = CounterRNG(5).split(3).uint32(0, 16)
        b = CounterRNG(5).split(3).uint32(0, 16)
        np.testing.assert_array_equal(a, b)

    def test_split_independent(self):
        base = CounterRNG(5)
        assert not np.array_equal(base.split(1).uint32(0, 16), base.split(2).uint32(0, 16))

    def test_huge_seed_accepted(self):
        rng = CounterRNG(2**200 + 17)
        assert rng.uint32(0, 4).shape == (4,)

    def test_negative_seed_distinct_from_positive(self):
        assert not np.array_equal(
            CounterRNG(-3).uint32(0, 8), CounterRNG(3).uint32(0, 8)
        )

    def test_zero_count(self):
        assert CounterRNG(0).uint32(5, 0).size == 0

    def test_negative_args_rejected(self):
        with pytest.raises(ValueError):
            CounterRNG(0).uint32(-1, 4)
        with pytest.raises(ValueError):
            CounterRNG(0).uint32(0, -4)

    def test_uint64_combines_words(self):
        rng = CounterRNG(9)
        w = rng.uint32(0, 4).astype(np.uint64)
        u = rng.uint64(0, 2)
        assert u[0] == (w[0] << np.uint64(32)) | w[1]
        assert u[1] == (w[2] << np.uint64(32)) | w[3]

    def test_uniform_in_unit_interval(self):
        u = CounterRNG(11).uniform(0, 10000)
        assert u.min() >= 0.0
        assert u.max() < 1.0

    def test_uniform_mean_and_variance(self):
        u = CounterRNG(13).uniform(0, 200000)
        assert abs(u.mean() - 0.5) < 0.005
        assert abs(u.var() - 1.0 / 12.0) < 0.005

    def test_randint_range(self):
        v = CounterRNG(17).randint(0, 50000, 13)
        assert v.min() >= 0
        assert v.max() <= 12

    def test_randint_covers_all_values(self):
        v = CounterRNG(19).randint(0, 5000, 7)
        assert set(np.unique(v).tolist()) == set(range(7))

    def test_randint_approximately_uniform(self):
        v = CounterRNG(23).randint(0, 70000, 7)
        counts = np.bincount(v, minlength=7)
        expected = 10000.0
        assert np.all(np.abs(counts - expected) < 5 * np.sqrt(expected))

    def test_randint_bad_bounds(self):
        with pytest.raises(ValueError):
            CounterRNG(0).randint(0, 4, 0)
        with pytest.raises(ValueError):
            CounterRNG(0).randint(0, 4, 2**33)

    def test_normal_moments(self):
        z = CounterRNG(29).normal(0, 100000)
        assert abs(z.mean()) < 0.02
        assert abs(z.std() - 1.0) < 0.02

    def test_permutation_is_permutation(self):
        p = CounterRNG(31).permutation(0, 100)
        np.testing.assert_array_equal(np.sort(p), np.arange(100))

    def test_permutation_deterministic(self):
        np.testing.assert_array_equal(
            CounterRNG(31).permutation(0, 50), CounterRNG(31).permutation(0, 50)
        )

    def test_permutation_varies_with_start(self):
        a = CounterRNG(31).permutation(0, 50)
        b = CounterRNG(31).permutation(1000, 50)
        assert not np.array_equal(a, b)

    def test_permutation_small_sizes(self):
        assert CounterRNG(0).permutation(0, 0).size == 0
        np.testing.assert_array_equal(CounterRNG(0).permutation(0, 1), [0])
