"""Unit tests for direction streams and processor interleaving."""

import numpy as np
import pytest

from repro.rng import DirectionStream, interleave_counts


class TestDirectionStream:
    def test_pure_function_of_index(self):
        s = DirectionStream(100, seed=5)
        first = s.direction(42)
        _ = s.directions(0, 1000)  # unrelated reads must not disturb it
        assert s.direction(42) == first

    def test_batch_matches_singles(self):
        s = DirectionStream(37, seed=9)
        batch = s.directions(10, 50)
        singles = np.array([s.direction(10 + k) for k in range(50)])
        np.testing.assert_array_equal(batch, singles)

    def test_range(self):
        s = DirectionStream(7, seed=1)
        d = s.directions(0, 5000)
        assert d.min() >= 0 and d.max() <= 6

    def test_uniformity(self):
        n = 11
        s = DirectionStream(n, seed=3)
        d = s.directions(0, 110000)
        counts = np.bincount(d, minlength=n)
        expected = 10000.0
        assert np.all(np.abs(counts - expected) < 5 * np.sqrt(expected))

    def test_same_seed_same_sequence(self):
        a = DirectionStream(50, seed=4).directions(0, 100)
        b = DirectionStream(50, seed=4).directions(0, 100)
        np.testing.assert_array_equal(a, b)

    def test_different_seed_different_sequence(self):
        a = DirectionStream(50, seed=4).directions(0, 100)
        b = DirectionStream(50, seed=5).directions(0, 100)
        assert not np.array_equal(a, b)

    def test_invalid_dimension(self):
        with pytest.raises(ValueError):
            DirectionStream(0, seed=1)

    def test_step_uniforms_do_not_perturb_directions(self):
        s = DirectionStream(20, seed=6)
        d_before = s.directions(0, 50)
        u = s.step_uniforms(0, 50)
        d_after = s.directions(0, 50)
        np.testing.assert_array_equal(d_before, d_after)
        assert u.min() >= 0 and u.max() < 1


class TestGatheredAccess:
    def test_directions_at_matches_singles(self):
        s = DirectionStream(37, seed=9)
        positions = np.array([0, 1, 5, 4, 1000, 7, 7, 123456], dtype=np.int64)
        gathered = s.directions_at(positions)
        singles = np.array([s.direction(int(j)) for j in positions])
        np.testing.assert_array_equal(gathered, singles)

    def test_directions_at_matches_contiguous_batch(self):
        s = DirectionStream(100, seed=2)
        np.testing.assert_array_equal(
            s.directions_at(np.arange(3, 203)), s.directions(3, 200)
        )

    def test_empty_gather(self):
        s = DirectionStream(10, seed=0)
        assert s.directions_at(np.empty(0, dtype=np.int64)).size == 0

    def test_negative_position_rejected(self):
        s = DirectionStream(10, seed=0)
        with pytest.raises(ValueError):
            s.directions_at(np.array([3, -1]))


class TestProcessorViews:
    def test_union_reproduces_global_sequence(self):
        """The paper's Random123 technique: P round-robin views together
        consume exactly the serial direction sequence."""
        n, total, nproc = 30, 60, 4
        s = DirectionStream(n, seed=7)
        global_seq = s.directions(0, total)
        counts = interleave_counts(total, nproc)
        reconstructed = np.empty(total, dtype=np.int64)
        for p in range(nproc):
            view = s.for_processor(p, nproc)
            local = view.directions(0, int(counts[p]))
            reconstructed[p::nproc] = local
        np.testing.assert_array_equal(reconstructed, global_seq)

    def test_view_direction_single(self):
        s = DirectionStream(30, seed=8)
        view = s.for_processor(2, 5)
        assert view.direction(3) == s.direction(2 + 3 * 5)

    def test_invalid_processor_index(self):
        s = DirectionStream(10, seed=1)
        with pytest.raises(ValueError):
            s.for_processor(5, 5)
        with pytest.raises(ValueError):
            s.for_processor(-1, 5)


class TestInterleaveCounts:
    def test_sums_to_total(self):
        for total in (0, 1, 7, 64, 100):
            for nproc in (1, 2, 3, 7, 16):
                assert interleave_counts(total, nproc).sum() == total

    def test_even_split(self):
        np.testing.assert_array_equal(interleave_counts(12, 4), [3, 3, 3, 3])

    def test_remainder_goes_to_leading_processors(self):
        np.testing.assert_array_equal(interleave_counts(10, 4), [3, 3, 2, 2])
