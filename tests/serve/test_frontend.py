"""Front-end tests: JSON-lines over a stream, over TCP, and the CLI.

All transports speak the protocol of :mod:`repro.serve.protocol`;
responses always come back in submission order, and a malformed line
answers with ``ok: false`` instead of killing the stream.
"""

import io
import json
import socket
import threading

import numpy as np
import pytest

from repro.cli import main
from repro.serve import SolverServer, make_tcp_server, serve_stream

from .conftest import WAIT

pytestmark = pytest.mark.serve


@pytest.fixture()
def server(system):
    A, _, _ = system
    with SolverServer(
        A, nproc=1, capacity_k=4, tol=1e-8, max_sweeps=300,
        sync_every_sweeps=10, max_wait=0.05,
    ) as srv:
        yield srv


def request_line(request_id, b, **extra) -> str:
    return json.dumps({"id": request_id, "b": np.asarray(b).tolist(), **extra})


class TestStream:
    def test_responses_in_submission_order(self, server, system):
        A, b, _ = system
        lines = [request_line(f"r{j}", b * (j + 1.0)) for j in range(4)]
        out = io.StringIO()
        handled = serve_stream(server, iter(lines), out)
        assert handled == 4
        responses = [json.loads(ln) for ln in out.getvalue().splitlines()]
        assert [r["id"] for r in responses] == ["r0", "r1", "r2", "r3"]
        for j, r in enumerate(responses):
            assert r["ok"] and r["converged"]
            x = np.asarray(r["x"])
            resid = np.linalg.norm(b * (j + 1.0) - A.matvec(x))
            assert resid < 1e-6 * np.linalg.norm(b * (j + 1.0))

    def test_malformed_line_answers_without_killing_stream(self, server, system):
        _, b, _ = system
        lines = [
            request_line("good-1", b),
            "this is not json",
            json.dumps({"b": b.tolist(), "bogus_field": 1}),
            request_line("good-2", b * 2.0),
        ]
        out = io.StringIO()
        handled = serve_stream(server, iter(lines), out)
        assert handled == 4
        responses = [json.loads(ln) for ln in out.getvalue().splitlines()]
        assert [r["ok"] for r in responses] == [True, False, False, True]
        assert responses[0]["id"] == "good-1"
        assert responses[3]["id"] == "good-2"
        assert "JSON" in responses[1]["error"]
        assert responses[1]["id"] is None  # unparseable: nothing to echo
        assert "unknown request field" in responses[2]["error"]

    def test_protocol_violation_with_parseable_json_echoes_id(
        self, server, system
    ):
        """A line that is valid JSON but violates the protocol carries a
        usable id — the client must be able to correlate the error.
        ``id: null`` is strictly for lines that did not parse at all."""
        _, b, _ = system
        lines = [
            json.dumps({"id": "bad-field", "b": b.tolist(), "bogus": 1}),
            json.dumps({"id": "no-b", "tol": 1e-6}),
            json.dumps({"id": "bad-type", "b": b.tolist(), "tol": "tight"}),
            json.dumps({"id": "bad-op", "op": "dance", "b": b.tolist()}),
        ]
        out = io.StringIO()
        handled = serve_stream(server, iter(lines), out)
        assert handled == 4
        responses = [json.loads(ln) for ln in out.getvalue().splitlines()]
        assert all(r["ok"] is False for r in responses)
        assert [r["id"] for r in responses] == [
            "bad-field", "no-b", "bad-type", "bad-op",
        ]

    def test_output_stream_closing_mid_burst_does_not_wedge(
        self, server, system
    ):
        """A text out-stream that dies mid-burst raises ValueError
        ("I/O operation on closed file"), not OSError; the writer must
        treat both as a dead pipe — keep draining results, stop writing
        — or serve_stream wedges forever on the writer join."""
        _, b, _ = system

        class _DiesAfterFirstWrite(io.StringIO):
            def write(self, text):
                alive_before = not self.closed
                result = super().write(text)
                if alive_before:
                    self.close()  # next write raises ValueError
                return result

        out = _DiesAfterFirstWrite()
        lines = [request_line(f"r{j}", b * (j + 1.0)) for j in range(5)]
        handled = serve_stream(server, iter(lines), out)
        assert handled == 5  # every request was still served
        stats = server.stats()
        assert stats.requests_served >= 5
        assert stats.requests_failed == 0

    def test_shape_violation_answers_inline_echoing_id(self, server, system):
        """A line that parses but fails validation echoes its id — id
        null is reserved for lines with nothing trustworthy to echo."""
        _, b, _ = system
        lines = [request_line("short", b[:-1])]
        out = io.StringIO()
        serve_stream(server, iter(lines), out)
        (resp,) = [json.loads(ln) for ln in out.getvalue().splitlines()]
        assert resp["ok"] is False
        assert resp["id"] == "short"
        assert "expected" in resp["error"]

    def test_block_request_roundtrip(self, server, block_system):
        _, B, _ = block_system
        lines = [request_line("blk", B[:, :2])]  # rows of 2 columns
        out = io.StringIO()
        serve_stream(server, iter(lines), out)
        (resp,) = [json.loads(ln) for ln in out.getvalue().splitlines()]
        assert resp["ok"] and resp["converged"]
        assert np.asarray(resp["x"]).shape == (B.shape[0], 2)
        assert resp["column_converged"] == [True, True]

    def test_blank_lines_skipped(self, server, system):
        _, b, _ = system
        lines = ["", "   ", request_line("only", b), ""]
        out = io.StringIO()
        handled = serve_stream(server, iter(lines), out)
        assert handled == 1
        assert len(out.getvalue().splitlines()) == 1


class TestTCP:
    def test_roundtrip_over_socket(self, server, system):
        A, b, _ = system
        tcp = make_tcp_server(server, "127.0.0.1", 0)  # ephemeral port
        host, port = tcp.server_address
        runner = threading.Thread(target=tcp.serve_forever, daemon=True)
        runner.start()
        try:
            with socket.create_connection((host, port), timeout=WAIT) as sock:
                sock.settimeout(WAIT)
                f = sock.makefile("rw", encoding="utf-8")
                for j in range(3):
                    f.write(request_line(j, b * (j + 1.0)) + "\n")
                f.flush()
                sock.shutdown(socket.SHUT_WR)
                responses = [json.loads(ln) for ln in f]
        finally:
            tcp.shutdown()
            tcp.server_close()
        assert [r["id"] for r in responses] == [0, 1, 2]
        assert all(r["ok"] and r["converged"] for r in responses)

    def test_client_disconnect_before_reading_survives(self, server, system):
        """A client that submits and vanishes without reading its
        responses must not kill the writer thread or the server: the
        next healthy connection is answered normally."""
        _, b, _ = system
        tcp = make_tcp_server(server, "127.0.0.1", 0)
        host, port = tcp.server_address
        runner = threading.Thread(target=tcp.serve_forever, daemon=True)
        runner.start()
        try:
            rude = socket.create_connection((host, port), timeout=WAIT)
            rude.sendall(
                (request_line(1, b) + "\n" + request_line(2, b) + "\n").encode()
            )
            rude.close()  # gone before any response is written
            with socket.create_connection((host, port), timeout=WAIT) as sock:
                sock.settimeout(WAIT)
                f = sock.makefile("rw", encoding="utf-8")
                f.write(request_line(3, b) + "\n")
                f.flush()
                sock.shutdown(socket.SHUT_WR)
                (resp,) = [json.loads(ln) for ln in f]
        finally:
            tcp.shutdown()
            tcp.server_close()
        assert resp["ok"] and resp["id"] == 3

    def test_invalid_utf8_gets_error_response_not_a_dead_connection(
        self, server, system
    ):
        """A client sending bytes that are not UTF-8 must get an
        ``ok: false`` line and keep its connection — the decode error
        used to unwind the handler and kill the socket with a
        socketserver traceback."""
        _, b, _ = system
        tcp = make_tcp_server(server, "127.0.0.1", 0)
        host, port = tcp.server_address
        runner = threading.Thread(target=tcp.serve_forever, daemon=True)
        runner.start()
        try:
            with socket.create_connection((host, port), timeout=WAIT) as sock:
                sock.settimeout(WAIT)
                sock.sendall(b"\xff\xfe{not utf8\n")
                sock.sendall((request_line("after", b) + "\n").encode())
                sock.shutdown(socket.SHUT_WR)
                f = sock.makefile("r", encoding="utf-8")
                responses = [json.loads(ln) for ln in f]
        finally:
            tcp.shutdown()
            tcp.server_close()
        assert len(responses) == 2
        assert responses[0]["ok"] is False
        assert "JSON" in responses[0]["error"]
        # The same connection stays alive for well-formed traffic.
        assert responses[1]["ok"] is True
        assert responses[1]["id"] == "after"

    def test_two_connections_share_one_pool(self, server, system):
        _, b, _ = system
        tcp = make_tcp_server(server, "127.0.0.1", 0)
        host, port = tcp.server_address
        runner = threading.Thread(target=tcp.serve_forever, daemon=True)
        runner.start()
        try:
            for round_ in range(2):
                with socket.create_connection((host, port), timeout=WAIT) as sock:
                    sock.settimeout(WAIT)
                    f = sock.makefile("rw", encoding="utf-8")
                    f.write(request_line(round_, b) + "\n")
                    f.flush()
                    sock.shutdown(socket.SHUT_WR)
                    (resp,) = [json.loads(ln) for ln in f]
                assert resp["ok"] and resp["id"] == round_
        finally:
            tcp.shutdown()
            tcp.server_close()
        assert server.spawn_count == 1


class TestCLI:
    def test_stdin_mode_serves_problem(self, monkeypatch, capsys):
        from repro.workloads import get_problem

        prob = get_problem("social-small")
        lines = "\n".join(
            request_line(j, prob.b * (j + 1.0), tol=1e-4) for j in range(3)
        )
        monkeypatch.setattr("sys.stdin", io.StringIO(lines + "\n"))
        rc = main([
            "serve", "--problem", "social-small", "--nproc", "1",
            "--capacity", "4", "--max-sweeps", "800",
        ])
        captured = capsys.readouterr()
        assert rc == 0
        responses = [json.loads(ln) for ln in captured.out.splitlines()]
        assert [r["id"] for r in responses] == [0, 1, 2]
        assert all(r["ok"] for r in responses)
        assert "served 3 request(s)" in captured.err
        assert "pool spawn(s)" in captured.err

    def test_stdin_mode_routes_across_registered_matrices(
        self, monkeypatch, capsys
    ):
        """Two --matrix registrations behind one stdin gateway: requests
        route by their "matrix" field, unrouted ones hit the first
        registered (default) matrix, and the matrices verb lists both."""
        from repro.workloads import get_problem

        prob = get_problem("social-small")
        lines = "\n".join(
            [
                json.dumps(
                    {"id": "a1", "b": prob.b.tolist(), "matrix": "alpha",
                     "tol": 1e-4}
                ),
                json.dumps(
                    {"id": "b1", "b": (2.0 * prob.b).tolist(),
                     "matrix": "beta", "tol": 1e-4}
                ),
                json.dumps({"id": "d1", "b": prob.b.tolist(), "tol": 1e-4}),
                json.dumps({"id": "mx", "op": "matrices"}),
            ]
        )
        monkeypatch.setattr("sys.stdin", io.StringIO(lines + "\n"))
        rc = main([
            "serve", "--matrix", "alpha=social-small",
            "--matrix", "beta=social-small", "--nproc", "1",
            "--capacity", "4", "--max-sweeps", "800",
        ])
        captured = capsys.readouterr()
        assert rc == 0
        responses = {}
        for ln in captured.out.splitlines():
            obj = json.loads(ln)
            responses[obj["id"]] = obj
        assert responses["a1"]["ok"] and responses["a1"]["converged"]
        assert responses["b1"]["ok"] and responses["b1"]["converged"]
        assert responses["d1"]["ok"]  # unrouted -> default (alpha)
        listing = {m["matrix"]: m for m in responses["mx"]["matrices"]}
        assert set(listing) == {"alpha", "beta"}
        assert listing["alpha"]["default"] is True
        assert "served 3 request(s)" in captured.err

    def test_requires_exactly_one_source(self, capsys):
        assert main(["serve"]) == 2
        assert "exactly one" in capsys.readouterr().out
        assert main(["serve", "foo.mtx", "--problem", "social-small"]) == 2
        assert main([
            "serve", "--problem", "social-small",
            "--matrix", "x=social-small",
        ]) == 2

    def test_malformed_matrix_spec_is_a_clean_error(self, capsys):
        rc = main(["serve", "--matrix", "nospec"])
        assert rc == 2
        assert "NAME=SPEC" in capsys.readouterr().out

    def test_duplicate_matrix_name_is_a_clean_error(self, capsys):
        rc = main([
            "serve", "--matrix", "a=social-small",
            "--matrix", "a=social-small",
        ])
        assert rc == 2
        assert "more than once" in capsys.readouterr().out

    def test_tcp_and_http_transports_are_exclusive(self, capsys):
        rc = main([
            "serve", "--problem", "social-small", "--port", "0",
            "--http", "0",
        ])
        assert rc == 2
        assert "one transport" in capsys.readouterr().out

    def test_unknown_problem_is_a_clean_error(self, capsys):
        rc = main(["serve", "--problem", "no-such-problem"])
        assert rc == 2
        assert "unknown problem" in capsys.readouterr().out

    def test_help_epilog_documents_serving(self, capsys):
        with pytest.raises(SystemExit):
            main(["--help"])
        out = capsys.readouterr().out
        assert "Serving:" in out
        assert "repro experiment serve" in out
