"""Prometheus rendering tests: ``/v1/metrics`` must be scrapeable.

A monitoring stack is unforgiving about the text exposition format
(version 0.0.4), so these tests parse every rendered line with a strict
grammar — ``# HELP`` then ``# TYPE`` then samples, one header pair per
family, counters ``_total``-suffixed, label values quoted — and then
pin the coverage contract: server counters, registry gateway gauges,
per-shard series, the info metric, and the cache family appearing
exactly when warm-start caching is on. Pools are the simtest fakes, so
the suite runs on threads alone.
"""

import json
import re

import numpy as np
import pytest

from repro.serve import (
    METRICS_CONTENT_TYPE,
    MatrixRegistry,
    SolverServer,
    handle_line,
    render_metrics,
)

from .simtest.fakes import FakePool, diagonal_system, fake_factory

pytestmark = pytest.mark.serve

N = 8
DIAG = 2.0 ** (np.arange(N) % 3)

_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
_HELP_RE = re.compile(rf"^# HELP ({_NAME}) \S.*$")
_TYPE_RE = re.compile(rf"^# TYPE ({_NAME}) (counter|gauge)$")
_SAMPLE_RE = re.compile(
    rf"^({_NAME})(?:\{{([^{{}}]*)\}})? (-?(?:\d+\.?\d*(?:e[+-]?\d+)?))$"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def parse_exposition(text: str) -> dict:
    """Validate the full 0.0.4 grammar and return
    ``{family: {"kind": ..., "samples": [(labels, value), ...]}}``.
    Asserts the structural rules a Prometheus scraper enforces."""
    assert text.endswith("\n"), "exposition must end with a newline"
    families: dict = {}
    pending_help = None
    current = None
    for line in text.splitlines():
        if line.startswith("# HELP"):
            m = _HELP_RE.match(line)
            assert m, f"malformed HELP line: {line!r}"
            name = m.group(1)
            assert name not in families, f"family {name} rendered twice"
            pending_help = name
            current = None
            continue
        if line.startswith("# TYPE"):
            m = _TYPE_RE.match(line)
            assert m, f"malformed TYPE line: {line!r}"
            name, kind = m.groups()
            assert pending_help == name, (
                f"TYPE for {name} must directly follow its HELP"
            )
            if kind == "counter":
                assert name.endswith("_total"), (
                    f"counter {name} must be _total-suffixed"
                )
            families[name] = {"kind": kind, "samples": []}
            current = name
            pending_help = None
            continue
        m = _SAMPLE_RE.match(line)
        assert m, f"malformed sample line: {line!r}"
        name, label_blob, value = m.groups()
        assert name == current, (
            f"sample for {name} outside its family block ({current})"
        )
        labels = {}
        if label_blob:
            consumed = ",".join(
                f'{k}="{v}"' for k, v in _LABEL_RE.findall(label_blob)
            )
            assert consumed == label_blob, f"bad label syntax: {label_blob!r}"
            labels = dict(_LABEL_RE.findall(label_blob))
        families[name]["samples"].append((labels, float(value)))
    assert families, "empty exposition"
    return families


def value_of(families, name, **labels):
    for sample_labels, value in families[name]["samples"]:
        if all(sample_labels.get(k) == v for k, v in labels.items()):
            return value
    raise AssertionError(f"no {name} sample with labels {labels}")


@pytest.fixture()
def fake_server():
    with SolverServer(
        diagonal_system(DIAG),
        nproc=1,
        capacity_k=2,
        max_wait=0.0,
        solver_factory=fake_factory(),
    ) as server:
        yield server


class TestBareServer:
    def test_valid_exposition_with_default_matrix_label(self, fake_server):
        b = np.arange(1.0, N + 1.0)
        for _ in range(3):
            fake_server.submit(b).result()
        families = parse_exposition(render_metrics(fake_server))
        assert (
            value_of(families, "repro_requests_served_total", matrix="default")
            == 3
        )
        assert (
            value_of(
                families, "repro_requests_submitted_total", matrix="default"
            )
            == 3
        )
        assert value_of(families, "repro_pool_spawns_total") == 1
        assert families["repro_latency_mean_seconds"]["kind"] == "gauge"
        assert value_of(families, "repro_max_batch_size") >= 1
        info = value_of(
            families, "repro_matrix_info",
            matrix="default", method="asyrgs", policy="fixed",
        )
        assert info == 1
        # No cache attached -> no cache family in the scrape.
        assert not any(name.startswith("repro_cache") for name in families)

    def test_metrics_wire_verb_returns_the_same_text(self, fake_server):
        reply = json.loads(
            handle_line(fake_server, '{"op": "metrics", "id": "m1"}')()
        )
        assert reply["ok"] and reply["id"] == "m1"
        assert reply["trace_id"].startswith("t-")
        families = parse_exposition(reply["metrics"])
        assert "repro_requests_served_total" in families

    def test_content_type_pins_the_exposition_version(self):
        assert METRICS_CONTENT_TYPE.startswith("text/plain")
        assert "version=0.0.4" in METRICS_CONTENT_TYPE


class TestRegistry:
    @pytest.fixture()
    def registry(self):
        def factory(A, x_block, **kwargs):
            return FakePool(A, x_block, **kwargs)

        with MatrixRegistry(
            nproc=1,
            capacity_k=2,
            max_wait=0.0,
            max_live_pools=8,
            cache_solutions=True,
            solver_factory=factory,
        ) as reg:
            reg.register("lap", diagonal_system(DIAG))
            reg.register("big", diagonal_system(2.0 * DIAG), shards=3)
            yield reg

    def test_gateway_per_matrix_shard_and_cache_series(self, registry):
        b = np.arange(1.0, N + 1.0)
        registry.submit(b, matrix="lap").result()
        registry.submit(b, matrix="lap").result()  # exact cache hit
        registry.submit(b, matrix="big").result()
        families = parse_exposition(render_metrics(registry))
        # Gateway gauges.
        assert value_of(families, "repro_matrices_registered") == 2
        assert value_of(families, "repro_live_pools") == 2
        # Per-matrix counters carry the matrix label.
        assert (
            value_of(families, "repro_requests_served_total", matrix="lap")
            == 2
        )
        assert (
            value_of(families, "repro_requests_served_total", matrix="big")
            == 1
        )
        # Shard series: one per row shard of the sharded matrix, none
        # for the single-pool one.
        shard_labels = [
            labels
            for labels, _ in families["repro_shard_updates_total"]["samples"]
        ]
        assert {lb["matrix"] for lb in shard_labels} == {"big"}
        assert {lb["shard"] for lb in shard_labels} == {"0", "1", "2"}
        assert value_of(families, "repro_matrix_shards", matrix="big") == 3
        assert value_of(families, "repro_matrix_shards", matrix="lap") == 1
        # The cache family mirrors cache_stats() exactly.
        cs = registry.cache_stats()
        assert (
            value_of(families, "repro_cache_hits_total", kind="exact")
            == cs["hits_exact"]
        )
        assert (
            value_of(families, "repro_cache_hits_total", kind="near")
            == cs["hits_near"]
        )
        assert value_of(families, "repro_cache_misses_total") == cs["misses"]
        assert value_of(families, "repro_cache_entries") == cs["entries"]
        assert (
            value_of(families, "repro_cache_requests_total", start="warm")
            == cs["warm_requests"]
        )
        assert (
            value_of(families, "repro_cache_sweeps_total", start="cold")
            == cs["cold_sweeps"]
        )
        assert cs["hits_exact"] == 1  # the repeat really hit

    def test_label_values_are_escaped(self):
        """A matrix id with quotes/backslashes/newlines must not break
        the exposition grammar."""
        wicked = 'we"ird\\name\nx'
        with MatrixRegistry(
            nproc=1,
            capacity_k=2,
            max_wait=0.0,
            solver_factory=fake_factory(),
        ) as reg:
            reg.register(wicked, diagonal_system(DIAG))
            reg.submit(np.arange(1.0, N + 1.0), matrix=wicked).result()
            families = parse_exposition(render_metrics(reg))
        samples = families["repro_requests_served_total"]["samples"]
        ((labels, value),) = samples
        assert value == 1
        assert labels["matrix"] == 'we\\"ird\\\\name\\nx'
