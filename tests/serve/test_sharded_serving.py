"""Shard-aware serving: ``shards=N`` from the wire to the pools.

The serving-layer half of the sharded-solver contract: per-matrix shard
counts validate and travel through registration, the registry weighs a
sharded matrix as N pools against the live-pool cap (and retires its
shards together), stats report shard counts and per-shard update
breakdowns honestly (``mixed`` across heterogeneous matrices), and a
real ``shards=2`` pool set serves exact-routing traffic end to end.
"""

import io
import json

import numpy as np
import pytest

from repro.exceptions import ProtocolError, ServeError
from repro.serve import MatrixRegistry, ServerStats, SolverServer, merge_stats, serve_stream
from repro.serve.protocol import parse_line
from repro.workloads import laplacian_2d

from .conftest import WAIT
from .simtest.fakes import diagonal_system, fake_factory

pytestmark = [pytest.mark.serve, pytest.mark.shard]

SOLVE = dict(tol=1e-8, max_sweeps=5000, sync_every_sweeps=2)


def _snapshot(shards=1, shard_updates=(), served: int = 1) -> ServerStats:
    return ServerStats(
        requests_submitted=served,
        requests_served=served,
        requests_failed=0,
        batches=1,
        batched_singles=0,
        max_batch_size=1,
        max_queue_depth=1,
        latency_mean=0.5,
        latency_max=1.0,
        spawn_count=1,
        worker_pids=[],
        policy={"policy": "fixed"},
        shards=shards,
        shard_updates=list(shard_updates),
    )


class TestMergeShards:
    def test_unanimous_count_stays_a_scalar(self):
        agg = merge_stats([_snapshot(shards=3), _snapshot(shards=3)])
        assert agg.shards == 3

    def test_heterogeneous_counts_report_the_breakdown(self):
        agg = merge_stats(
            [_snapshot(shards=3), _snapshot(shards=1), _snapshot(shards=1)]
        )
        assert agg.shards == {"shards": "mixed", "counts": {3: 1, 1: 2}}

    def test_nested_breakdowns_fold_their_tallies(self):
        inner = merge_stats([_snapshot(shards=3), _snapshot(shards=1)])
        agg = merge_stats([inner, _snapshot(shards=3)])
        assert agg.shards == {"shards": "mixed", "counts": {3: 2, 1: 1}}

    def test_empty_merge_defaults_to_one(self):
        assert merge_stats([]).shards == 1

    def test_shard_updates_pad_and_sum_elementwise(self):
        agg = merge_stats(
            [
                _snapshot(shards=3, shard_updates=[10, 20, 30]),
                _snapshot(shards=3, shard_updates=[1, 2, 3]),
                _snapshot(shards=1, shard_updates=[]),
            ]
        )
        assert agg.shard_updates == [11, 22, 33]


class TestValidation:
    def test_server_rejects_nonpositive_shards(self, system):
        A, _, _ = system
        with pytest.raises(ServeError, match="shards must be at least 1"):
            SolverServer(A, nproc=1, shards=0)

    def test_register_spec_rejects_nonpositive_shards(self):
        with MatrixRegistry(nproc=1) as reg:
            with pytest.raises(ServeError, match="shards must be at least 1"):
                reg.register_spec("m", problem="laplace2d", shards=0)

    @pytest.mark.parametrize("bad", [0, -2, True, 1.5, "2"])
    def test_wire_register_rejects_bad_shards(self, bad):
        line = json.dumps(
            {"op": "register", "matrix": "m", "problem": "laplace2d",
             "shards": bad}
        )
        with pytest.raises(ProtocolError, match="integer >= 1"):
            parse_line(line)

    def test_wire_register_accepts_shard_count(self):
        op, payload = parse_line(
            json.dumps(
                {"op": "register", "matrix": "m", "problem": "laplace2d",
                 "shards": 4}
            )
        )
        assert op == "register" and payload["shards"] == 4


class TestShardWeightedEviction:
    """``max_live_pools`` counts pools, not matrices (fake pools: the
    policy under test is the registry's, not the solver's)."""

    def test_sharded_matrix_weighs_its_shard_count(self):
        pools: list = []
        with MatrixRegistry(
            nproc=1,
            max_live_pools=3,
            capacity_k=2,
            max_wait=0.0,
            solver_factory=fake_factory(made=pools),
        ) as reg:
            d = 2.0 ** (np.arange(8) % 3)
            reg.register("sh", diagonal_system(d), shards=3)
            reg.register("plain", diagonal_system(2.0 * d))
            b = np.arange(1.0, 9.0)
            res = reg.submit(b, matrix="sh").result(WAIT)
            np.testing.assert_array_equal(res.x, b / d)
            assert reg.live_pools() == ["sh"]
            # Spawning plain's 1 pool alongside sh's 3 would hold
            # 4 >= max_live_pools: the idle sharded matrix is evicted,
            # all of its shards retired together.
            res = reg.submit(b, matrix="plain").result(WAIT)
            np.testing.assert_array_equal(res.x, b / (2.0 * d))
            assert reg.live_pools() == ["plain"]
            # Lifetime stats survive the eviction, shard count intact.
            sh = reg.stats("sh")
            assert sh.shards == 3
            assert sh.requests_served == 1
            assert len(sh.shard_updates) == 3
            agg = reg.stats()
            assert agg.shards == {"shards": "mixed", "counts": {3: 1, 1: 1}}

    def test_unsharded_matrices_still_weigh_one_pool_each(self):
        """Two single-pool matrices fit side by side under a cap of 2 —
        the shard weighting must not inflate the classic accounting."""
        pools: list = []
        with MatrixRegistry(
            nproc=1,
            max_live_pools=2,
            capacity_k=2,
            max_wait=0.0,
            solver_factory=fake_factory(made=pools),
        ) as reg:
            d = np.ones(8)
            for name in ("a", "b"):
                reg.register(name, diagonal_system(d))
            bvec = np.arange(1.0, 9.0)
            reg.submit(bvec, matrix="a").result(WAIT)
            reg.submit(bvec, matrix="b").result(WAIT)
            assert reg.live_pools() == ["a", "b"]


class TestShardedEndToEnd:
    """A real ``shards=2`` pool set behind the server: exact answers,
    honest shard books, the full wire path."""

    def test_server_solves_and_reports_shards(self):
        A = laplacian_2d(6)
        n = A.shape[0]
        x_star = np.sin(np.linspace(0.0, 2.0 * np.pi, n))
        b = A.matvec(x_star)
        with SolverServer(
            A, nproc=1, capacity_k=2, shards=2, max_wait=0.0, **SOLVE
        ) as srv:
            res = srv.submit(b).result(WAIT)
            assert res.converged
            np.testing.assert_allclose(res.x, x_star, rtol=0, atol=1e-5)
            stats = srv.stats()
            assert stats.shards == 2
            assert len(stats.shard_updates) == 2
            assert min(stats.shard_updates) > 0
            assert stats.spawn_count == 2  # both shards, one cold start
            (entry,) = srv.matrices_payload()
            assert entry["shards"] == 2

    def test_registry_wire_round_trip_with_shards(self):
        A = laplacian_2d(6)
        n = A.shape[0]
        x_star = np.cos(np.linspace(0.0, np.pi, n))
        b = A.matvec(x_star)
        with MatrixRegistry(
            nproc=1, capacity_k=2, max_wait=0.0, **SOLVE
        ) as reg:
            reg.register("lap", A, shards=2)
            lines = [
                json.dumps({"id": "s1", "b": b.tolist(), "matrix": "lap"}),
                json.dumps({"op": "stats", "id": "st", "matrix": "lap"}),
                json.dumps({"op": "matrices", "id": "mx"}),
            ]
            out = io.StringIO()
            serve_stream(reg, iter(lines), out)
        s1, st, mx = [json.loads(ln) for ln in out.getvalue().splitlines()]
        assert s1["ok"] and s1["converged"]
        np.testing.assert_allclose(s1["x"], x_star, rtol=0, atol=1e-5)
        assert st["ok"] and st["shards"] == 2
        assert len(st["shard_updates"]) == 2
        (entry,) = mx["matrices"]
        assert entry["matrix"] == "lap" and entry["shards"] == 2
