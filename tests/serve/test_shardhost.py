"""Shard-host serving tests: ``repro serve --shard-of`` end to end.

Three layers:

* :class:`ShardHost` verb validation with no pools and no wire — the
  refusals and geometry checks a mis-addressed or mis-ordered request
  hits, all cheap.
* One host driving a real ``nproc=1`` pool through the shard verbs
  directly (no sockets): begin → advance epochs → pull → stop, with
  the monitoring payloads checked at each step.
* The tentpole e2e: two shard hosts behind real TCP front-ends
  exchanging halos on their peer ring while a
  :class:`~repro.execution.ShardedSolver` coordinator drives them via
  ``nodes=[...]`` — the in-process version of the multinode CI job —
  plus the same ring behind a :class:`MatrixRegistry` entry registered
  with ``nodes=[...]``, and the ``repro_halo_*`` metrics scrape.
"""

import threading

import numpy as np
import pytest

from repro.exceptions import ServeError
from repro.execution import ShardedSolver
from repro.serve import (
    MatrixRegistry,
    ShardHost,
    make_tcp_server,
    render_metrics,
)

from .conftest import WAIT

pytestmark = pytest.mark.serve


@pytest.fixture()
def host(system):
    A, _, _ = system
    with ShardHost(A, name="m") as h:
        yield h


def _begin_payload(n, shards=1, shard=0, bounds=None, **extra):
    bounds = bounds if bounds is not None else [[0, n]]
    r0, r1 = bounds[shard] if shard < len(bounds) else bounds[0]
    payload = {
        "matrix": "m",
        "shard": shard,
        "shards": shards,
        "bounds": bounds,
        "x0": [0.0] * n,
        "b": [1.0] * (r1 - r0),
        "nproc": 1,
        "seed": 3,
        "params": {},
    }
    payload.update(extra)
    return payload


class TestVerbValidation:
    def test_submit_refuses_with_a_pointer_at_the_coordinator(self, host):
        with pytest.raises(ServeError, match="does not take solve requests"):
            host.submit(b=[1.0])

    def test_wrong_matrix_rejected_by_every_verb(self, host, system):
        A, _, _ = system
        n = A.shape[0]
        for call in (
            lambda: host.shard_begin(_begin_payload(n, matrix="other")),
            lambda: host.shard_advance({"matrix": "other", "count": n}),
            lambda: host.halo_pull({"matrix": "other", "rows": [0]}),
            lambda: host.stats_payload("other"),
        ):
            with pytest.raises(ServeError, match="serves shards of 'm'"):
                call()

    def test_advance_and_pull_before_begin_are_errors(self, host, system):
        A, _, _ = system
        with pytest.raises(ServeError, match="no active shard"):
            host.shard_advance({"matrix": "m", "count": A.shape[0]})
        with pytest.raises(ServeError, match="no active shard"):
            host.halo_pull({"matrix": "m", "rows": [0]})

    def test_push_before_begin_is_tolerated(self, host):
        """A peer's first publish can beat this host's shard_begin; the
        push is dropped (staleness, not an error) so the ring never
        deadlocks on start order."""
        reply = host.halo_push(
            {"matrix": "m", "shard": 1, "r0": 10, "r1": 20,
             "rows": [[0.0]] * 10, "generation": 1}
        )
        assert reply == {"matrix": "m", "applied": False,
                        "reason": "no active shard"}

    def test_stop_without_begin_reports_nothing_stopped(self, host):
        assert host.shard_stop({"matrix": "m"}) == {
            "matrix": "m", "stopped": False,
        }

    def test_bounds_must_tile_this_hosts_system(self, host, system):
        A, _, _ = system
        n = A.shape[0]
        with pytest.raises(ServeError, match="do not tile"):
            host.shard_begin(
                _begin_payload(n, shards=2, bounds=[[0, 10], [10, n + 5]])
            )

    def test_shard_index_and_bounds_count_validated(self, host, system):
        A, _, _ = system
        n = A.shape[0]
        with pytest.raises(ServeError, match="out of range"):
            host.shard_begin(_begin_payload(n, shard=2, shards=1))
        with pytest.raises(ServeError, match="bound pair"):
            host.shard_begin(
                _begin_payload(n, shards=2, bounds=[[0, n]], shard=0)
            )

    def test_geometry_mismatch_names_the_shapes(self, host, system):
        A, _, _ = system
        n = A.shape[0]
        with pytest.raises(ServeError, match="geometry mismatch"):
            host.shard_begin(_begin_payload(n, x0=[0.0] * (n - 1)))

    def test_closed_host_refuses_begin(self, system):
        A, _, _ = system
        h = ShardHost(A, name="m")
        h.close()
        with pytest.raises(ServeError, match="closed"):
            h.shard_begin(_begin_payload(A.shape[0]))


@pytest.mark.multiprocess
class TestHostEpochLoop:
    """One host, real nproc=1 pool, no sockets: the verb sequence a
    coordinator drives, with the monitoring payloads along the way."""

    def test_begin_advance_pull_stop(self, host, system):
        A, b, _ = system
        n = A.shape[0]
        reply = host.shard_begin(
            _begin_payload(n, b=b.tolist(), x0=[0.0] * n)
        )
        assert reply["rows"] == [0, n]
        assert reply["shard"] == 0 and reply["shards"] == 1
        assert reply["halo_rows"] == 0  # whole system owned: no halo
        assert reply["spawn_count"] == 1
        for epoch in range(1, 4):
            adv = host.shard_advance({"matrix": "m", "count": n})
            assert adv["generation"] == epoch
            assert len(adv["rows"]) == n
            assert adv["stats"]["per_worker"][0] > 0
        # The epochs made progress on the owned block.
        x = np.asarray(host.halo_pull({"matrix": "m", "rows": list(range(n))})["values"])
        r = b - A.matvec(x[:, 0])
        assert np.linalg.norm(r) < np.linalg.norm(b)
        stats = host.stats_payload("m")
        assert stats["role"] == "shard_host"
        assert stats["epochs"] == 3 and stats["begins"] == 1
        assert stats["halo"]["pull_serves"] == 1
        (entry,) = host.matrices_payload()
        assert entry["role"] == "shard_host" and entry["matrix"] == "m"
        assert host.shard_stop({"matrix": "m"})["stopped"] is True
        # Post-stop scrapes keep the last exchange counters.
        assert host.stats_payload()["halo"]["pull_serves"] == 1

    def test_rebegin_replaces_the_active_shard(self, host, system):
        A, b, _ = system
        n = A.shape[0]
        host.shard_begin(_begin_payload(n, b=b.tolist()))
        host.shard_advance({"matrix": "m", "count": n})
        host.shard_begin(_begin_payload(n, b=b.tolist()))
        stats = host.stats_payload()
        assert stats["begins"] == 2
        assert stats["epochs"] == 0  # the new shard starts fresh


@pytest.fixture()
def ring(system):
    """Two shard hosts for the session system behind real TCP
    front-ends, peered with each other — the in-process twin of the
    multinode CI job's two ``repro serve --shard-of`` processes."""
    A, _, _ = system
    hosts, servers, threads, addrs = [], [], [], []
    for _ in range(2):
        h = ShardHost(A, name="m", nproc=1)
        srv = make_tcp_server(h, "127.0.0.1", 0)
        t = threading.Thread(target=srv.serve_forever, daemon=True)
        t.start()
        hosts.append(h)
        servers.append(srv)
        threads.append(t)
        addr_host, addr_port = srv.server_address[:2]
        addrs.append(f"{addr_host}:{addr_port}")
    # Peer each host at the other; the ring is built before any
    # shard_begin constructs a WireHalo from it.
    hosts[0].peers = [addrs[1]]
    hosts[1].peers = [addrs[0]]
    try:
        yield hosts, addrs
    finally:
        for srv in servers:
            srv.shutdown()
            srv.server_close()
        for h in hosts:
            h.close()


@pytest.mark.multiprocess
class TestTwoNodeRing:
    def test_coordinated_solve_converges_with_halo_traffic(
        self, ring, system
    ):
        """The acceptance e2e: a 2-node WireHalo solve converges on the
        coordinator's assembled global residual, and both hosts counted
        per-peer halo pushes with zero failures."""
        hosts, addrs = ring
        A, b, x_star = system
        solver = ShardedSolver(
            A, b, shards=2, nproc=1, seed=3, nodes=addrs,
            node_matrix="m", barrier_timeout=WAIT / 4,
        )
        result = solver.solve(1e-8, 5000, sync_every_sweeps=2)
        assert result.converged
        assert np.abs(result.x - x_star).max() < 1e-5
        for h, peer in zip(hosts, reversed(addrs)):
            stats = h.stats_payload()
            halo = stats["halo"]
            assert halo["pushes"][peer] > 0
            assert halo["push_failures"][peer] == 0
            assert halo["received"] > 0
            assert stats["epochs"] > 0

    def test_metrics_scrape_renders_the_halo_families(self, ring, system):
        hosts, addrs = ring
        A, b, _ = system
        ShardedSolver(
            A, b, shards=2, nproc=1, seed=3, nodes=addrs,
            node_matrix="m", barrier_timeout=WAIT / 4,
        ).solve(1e-8, 5000, sync_every_sweeps=2)
        text = render_metrics(hosts[0])
        peer = addrs[1]
        assert f'repro_halo_pushes_total{{matrix="m",shard="0",peer="{peer}"}}' in text
        assert f'repro_halo_push_failures_total{{matrix="m",shard="0",peer="{peer}"}} 0' in text
        assert 'repro_halo_received_total{matrix="m",shard="0"}' in text
        assert 'repro_shard_epochs_total{matrix="m",shard="0"}' in text
        assert 'repro_shard_host_info{matrix="m",shard="0",shards="2"} 1' in text
        # No solve-server families leak into a shard host's scrape.
        assert "repro_requests_served_total" not in text

    def test_registry_matrix_registered_with_nodes(self, ring, system):
        """The gateway path: a registry entry backed by the ring routes
        ordinary solve requests through the node-backed coordinator,
        weighs one pool slot, and lists its nodes."""
        _, addrs = ring
        A, b, x_star = system
        with MatrixRegistry(
            nproc=1, capacity_k=2, tol=1e-8, max_sweeps=5000,
            sync_every_sweeps=2, max_wait=0.0, barrier_timeout=WAIT / 4,
        ) as reg:
            reg.register("m", A, nodes=addrs)
            res = reg.solve(b, matrix="m", timeout=WAIT)
            assert res.converged
            assert np.abs(res.x - x_star).max() < 1e-5
            (entry,) = reg.matrices_payload()
            assert entry["nodes"] == addrs
            assert reg.live_pools() == ["m"]
