"""Concurrency and stress tests for the solver server and the registry.

Four stories the serving subsystem must survive:

* mixed clients hammering two matrices through one registry — every
  result must match *its own* matrix's serial solve (per-matrix
  batching never mixes columns across matrices);

* many client threads submitting mixed single/block traffic — every
  result must match the equivalent serial solve;
* a slow-converging neighbor — other requests keep completing (FIFO +
  bounded batches: no starvation);
* a worker crash mid-batch — only the affected requests fail, with the
  worker id in the error, and the server recovers by respawning the
  pool for the next batch (extends PR 3's poisoned-matrix pattern with
  a fork-inherited fault injection, so the *parent's* residual checks
  stay healthy while a worker dies).
"""

import multiprocessing
import threading

import numpy as np
import pytest

from repro.core import AsyRGS
from repro.exceptions import ServeError
from repro.serve import MatrixRegistry, SolverServer
from repro.workloads import random_unit_diagonal_spd
import repro.execution.pool as processes_module

from ..conftest import manufactured_system
from .conftest import WAIT

pytestmark = pytest.mark.serve


class TestConcurrentClients:
    def test_mixed_traffic_matches_serial(self, block_system):
        """8 client threads × mixed single/block requests against one
        nproc=1 server: every result equals the same-parameter serial
        AsyRGS.solve (deterministic engine, per-request retirement)."""
        A, B, _ = block_system
        n, k = B.shape
        kwargs = dict(tol=1e-8, max_sweeps=300, sync_every_sweeps=10)
        # One reference per distinct request payload, computed serially.
        refs = {
            j: AsyRGS(A, B[:, j], nproc=1, engine="processes").solve(**kwargs)
            for j in range(k)
        }
        refs["block"] = AsyRGS(
            A, B[:, :3], nproc=1, engine="processes"
        ).solve(**kwargs)

        n_threads, per_thread = 8, 6
        outcomes: dict = {}
        errors: list = []

        with SolverServer(
            A, nproc=1, capacity_k=k, tol=1e-8, max_sweeps=300,
            sync_every_sweeps=10, max_wait=0.02,
        ) as srv:
            def client(tid):
                try:
                    for i in range(per_thread):
                        which = (tid + i) % (k + 1)
                        if which == k:
                            res = srv.solve(B[:, :3], timeout=WAIT)
                            outcomes[(tid, i)] = ("block", res)
                        else:
                            res = srv.solve(B[:, which], timeout=WAIT)
                            outcomes[(tid, i)] = (which, res)
                except BaseException as exc:  # noqa: BLE001
                    errors.append((tid, exc))

            threads = [
                threading.Thread(target=client, args=(tid,))
                for tid in range(n_threads)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            stats = srv.stats()

        assert not errors, errors
        assert len(outcomes) == n_threads * per_thread
        assert stats.requests_served == n_threads * per_thread
        assert stats.requests_failed == 0
        assert stats.spawn_count == 1  # the whole storm on one pool
        for (tid, i), (which, res) in outcomes.items():
            ref = refs[which if which == "block" else which]
            assert res.converged
            # Coalesced batches compute a column's dot products through
            # a (nnz, m) matmul instead of the solo dot — identical
            # mathematics, last-ulp float differences allowed.
            np.testing.assert_allclose(
                res.x, ref.x, rtol=1e-9, atol=1e-12
            )

    def test_no_starvation_under_slow_neighbor(self, block_system):
        """A slow-converging request (tight tol ⇒ its own batch, many
        epochs) must not starve the easy traffic behind it: every easy
        request completes to its own tolerance."""
        A, B, _ = block_system
        with SolverServer(
            A, nproc=1, capacity_k=4, tol=1e-3, max_sweeps=400,
            sync_every_sweeps=1, max_wait=0.0,
        ) as srv:
            slow = srv.submit(B[:, 0], tol=1e-13)  # many more epochs
            easy = [
                srv.submit(B[:, 1 + (j % 3)] * (1.0 + j)) for j in range(12)
            ]
            easy_results = [h.result(WAIT) for h in easy]
            slow_result = slow.result(WAIT)
        assert all(r.converged for r in easy_results)
        assert all(r.residual < 1e-3 for r in easy_results)
        assert slow_result.converged
        assert slow_result.sweeps > max(r.sweeps for r in easy_results)

    def test_slow_neighbor_in_shared_batch_retires_others_early(
        self, block_system
    ):
        """Inside one coalesced batch, per-request retirement keeps an
        easy request's sweep count at its own retirement epoch — a hard
        neighbor costs it wall-clock, never extra updates. Warm-started
        requests (x0 = exact solution) must retire at sweep 0 while the
        cold request in the same batch runs its full course."""
        A, B, X_star = block_system
        with SolverServer(
            A, nproc=1, capacity_k=4, tol=1e-8, max_sweeps=400,
            sync_every_sweeps=1, max_wait=2.0,
        ) as srv:
            handles = [srv.submit(B[:, 0])] + [
                srv.submit(B[:, j], x0=X_star[:, j]) for j in (1, 2, 3)
            ]
            results = [h.result(WAIT) for h in handles]
            stats = srv.stats()
        assert all(r.converged for r in results)
        assert results[0].sweeps > 0
        for r in results[1:]:
            assert r.sweeps == 0  # retired before the first epoch
        # The whole quartet really shared solves (x0 is not part of the
        # batch key): fewer batches than requests.
        assert stats.batches < 4


class TestRegistryStress:
    def test_two_matrices_mixed_clients_never_mix(self):
        """8 client threads interleave traffic to two same-shape,
        different-content matrices through one registry. Same shape is
        the point: a request coalesced into the *other* matrix's batch
        would still run — and converge to a visibly wrong answer. Every
        result matching its own matrix's serial reference is therefore
        a proof that per-matrix batching never mixes columns across
        matrices."""
        kwargs = dict(tol=1e-8, max_sweeps=300, sync_every_sweeps=10)
        systems = {}
        for name, seed in (("one", 8), ("two", 21)):
            A = random_unit_diagonal_spd(
                30, nnz_per_row=4, offdiag_scale=0.6, seed=seed
            )
            b, _ = manufactured_system(A, seed=seed + 1)
            ref = AsyRGS(A, b, nproc=1, engine="processes").solve(**kwargs)
            assert ref.converged
            systems[name] = (A, b, ref)

        n_threads, per_thread = 8, 6
        outcomes: dict = {}
        errors: list = []

        with MatrixRegistry(
            nproc=1, capacity_k=8, max_live_pools=2, max_wait=0.02, **kwargs
        ) as reg:
            for name, (A, _, _) in systems.items():
                reg.register(name, A)

            def client(tid):
                try:
                    for i in range(per_thread):
                        name = "one" if (tid + i) % 2 == 0 else "two"
                        res = reg.solve(
                            systems[name][1], matrix=name, timeout=WAIT
                        )
                        outcomes[(tid, i)] = (name, res)
                except BaseException as exc:  # noqa: BLE001
                    errors.append((tid, exc))

            threads = [
                threading.Thread(target=client, args=(tid,))
                for tid in range(n_threads)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            per_matrix = {name: reg.stats(name) for name in systems}
            total = reg.stats()

        assert not errors, errors
        assert len(outcomes) == n_threads * per_thread
        for (tid, i), (name, res) in outcomes.items():
            ref = systems[name][2]
            assert res.converged
            # Identical mathematics modulo batch-width matmul ordering.
            np.testing.assert_allclose(res.x, ref.x, rtol=1e-9, atol=1e-12)
        # The counters split cleanly by matrix and add up.
        assert total.requests_served == n_threads * per_thread
        assert total.requests_failed == 0
        assert sum(s.requests_served for s in per_matrix.values()) == (
            n_threads * per_thread
        )
        # Both pools live within the cap: the storm never forced a
        # respawn, so batching demonstrably stayed within each pool.
        assert total.spawn_count == 2


class TestDispatcherResilience:
    def test_non_repro_failure_releases_waiters_and_server_survives(
        self, system
    ):
        """Any failure inside a batch — not just the backend's
        ModelError — must release that batch's waiters (a client blocked
        in result() without a timeout would otherwise hang forever) and
        leave the dispatcher serving."""
        A, b, _ = system
        with SolverServer(
            A, nproc=1, capacity_k=2, tol=1e-8, max_sweeps=300, max_wait=0.0
        ) as srv:
            real_solve = srv._solver.solve

            def exploding_solve(**kwargs):
                raise MemoryError("batch assembly blew up")

            srv._solver.solve = exploding_solve
            try:
                handle = srv.submit(b)
                with pytest.raises(ServeError, match="failed"):
                    handle.result(WAIT)
            finally:
                srv._solver.solve = real_solve
            assert srv.stats().requests_failed == 1
            assert srv.solve(b, timeout=WAIT).converged  # still serving


@pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fault injection rides fork inheritance",
)
class TestWorkerCrash:
    def test_crash_fails_only_affected_batch_with_worker_id(
        self, system, tmp_path, monkeypatch
    ):
        """A worker that dies mid-batch fails that batch's requests with
        the worker id in the error; the next batch respawns the pool and
        is served normally (the fault is one-shot: a flag file armed at
        spawn time, removed before the retry)."""
        A, b, _ = system
        flag = tmp_path / "crash-armed"
        flag.touch()
        real_loop = processes_module._worker_loop

        def crashing_loop(wid, *args, **kwargs):
            if wid == 1 and flag.exists():
                raise RuntimeError("injected worker crash")
            return real_loop(wid, *args, **kwargs)

        monkeypatch.setattr(processes_module, "_worker_loop", crashing_loop)
        with SolverServer(
            A, nproc=2, capacity_k=2, tol=1e-8, max_sweeps=200,
            sync_every_sweeps=10, max_wait=2.0, start_method="fork",
            barrier_timeout=60.0,
        ) as srv:
            doomed = [srv.submit(b), srv.submit(b * 2.0)]
            for h in doomed:
                with pytest.raises(
                    ServeError, match=r"worker process \d+ crashed"
                ):
                    h.result(WAIT)
            stats_mid = srv.stats()
            assert stats_mid.requests_failed == 2
            assert stats_mid.requests_served == 0

            flag.unlink()  # heal: the respawned pool's workers are clean
            recovered = srv.solve(b, timeout=WAIT)
            stats_end = srv.stats()

        assert recovered.converged
        assert stats_end.requests_served == 1
        assert stats_end.requests_failed == 2
        assert stats_end.spawn_count == 2  # the one honest respawn

    def test_crash_error_names_the_guilty_worker(
        self, system, tmp_path, monkeypatch
    ):
        """The id in the error is the worker that *raised*, not a
        sibling that died of the aborted barrier."""
        A, b, _ = system
        flag = tmp_path / "crash-armed"
        flag.touch()
        real_loop = processes_module._worker_loop

        def crashing_loop(wid, *args, **kwargs):
            if wid == 2 and flag.exists():
                raise RuntimeError("injected worker crash")
            return real_loop(wid, *args, **kwargs)

        monkeypatch.setattr(processes_module, "_worker_loop", crashing_loop)
        with SolverServer(
            A, nproc=3, capacity_k=2, tol=1e-8, max_sweeps=200,
            sync_every_sweeps=10, max_wait=0.0, start_method="fork",
            barrier_timeout=60.0,
        ) as srv:
            with pytest.raises(ServeError, match="worker process 2 crashed"):
                srv.solve(b, timeout=WAIT)
