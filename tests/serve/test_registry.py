"""Unit tests for :class:`repro.serve.MatrixRegistry`.

The routing contracts: requests reach exactly the matrix they name (or
the default when they name none), pools spawn lazily and are LRU-evicted
when idle past the cap, eviction is invisible in results and counters,
and the wire protocol's ``matrix`` field / ``register`` / ``stats`` /
``matrices`` verbs round-trip through the front-end seam.
"""

import io
import json

import numpy as np
import pytest

from repro.core import AsyRGS
from repro.exceptions import ServeError
from repro.serve import MatrixRegistry, ServerStats, merge_stats, serve_stream
from repro.sparse import write_matrix_market
from repro.workloads import random_least_squares, random_unit_diagonal_spd

from ..conftest import manufactured_system
from .conftest import WAIT

pytestmark = pytest.mark.serve

SOLVE = dict(tol=1e-8, max_sweeps=300, sync_every_sweeps=10)


@pytest.fixture(scope="module")
def two_systems():
    """Two same-shape, different-content systems: a request routed to
    the wrong matrix still runs (shapes agree) but converges to a
    visibly wrong answer — exactly the failure routing must prevent."""
    A1 = random_unit_diagonal_spd(30, nnz_per_row=4, offdiag_scale=0.6, seed=8)
    A2 = random_unit_diagonal_spd(30, nnz_per_row=4, offdiag_scale=0.6, seed=21)
    b1, x1 = manufactured_system(A1, seed=9)
    b2, x2 = manufactured_system(A2, seed=22)
    return (A1, b1, x1), (A2, b2, x2)


@pytest.fixture()
def registry(two_systems):
    (A1, _, _), (A2, _, _) = two_systems
    with MatrixRegistry(
        nproc=1, capacity_k=4, max_live_pools=2, max_wait=0.0, **SOLVE
    ) as reg:
        reg.register("one", A1)
        reg.register("two", A2)
        yield reg


def _snapshot(
    policy: dict,
    served: int = 1,
    latency_mean: float = 0.5,
    latency_max: float = 1.0,
) -> ServerStats:
    """A minimal per-pool snapshot for merge arithmetic tests."""
    return ServerStats(
        requests_submitted=served,
        requests_served=served,
        requests_failed=0,
        batches=1,
        batched_singles=0,
        max_batch_size=1,
        max_queue_depth=1,
        latency_mean=latency_mean,
        latency_max=latency_max,
        spawn_count=1,
        worker_pids=[],
        policy=policy,
    )


class TestMergeStats:
    """The aggregate's ``policy`` field must describe the fleet, not
    whichever pool's snapshot happened to come last."""

    def test_single_snapshot_policy_passes_through(self):
        policy = {"policy": "adaptive", "batches_observed": 3}
        merged = merge_stats([_snapshot(policy)])
        assert merged.policy == policy

    def test_unanimous_fleet_reports_name_and_pool_count(self):
        merged = merge_stats(
            [_snapshot({"policy": "fixed", "max_wait": 0.01}) for _ in range(3)]
        )
        assert merged.policy == {"policy": "fixed", "pools": 3}

    def test_mixed_fleet_reports_the_breakdown(self):
        merged = merge_stats(
            [
                _snapshot({"policy": "fixed", "max_wait": 0.01}),
                _snapshot({"policy": "adaptive", "batches_observed": 2}),
                _snapshot({"policy": "fixed", "max_wait": 0.05}),
            ]
        )
        assert merged.policy == {
            "policy": "mixed",
            "pools": 3,
            "policies": {"fixed": 2, "adaptive": 1},
        }

    def test_empty_merge_has_empty_policy(self):
        assert merge_stats([]).policy == {}


class TestMergeLatency:
    """The aggregate latency mean must be served-count-weighted — a
    busy pool's mean outweighs an idle one's — and the max is the max
    over pools. Naive mean-of-means would let a one-request pool skew
    the fleet number; these pin the exact arithmetic the metrics
    endpoint and ``/v1/stats`` report."""

    _policy = {"policy": "fixed", "max_wait": 0.01}

    def test_mean_is_served_weighted(self):
        merged = merge_stats(
            [
                _snapshot(self._policy, served=9, latency_mean=0.1),
                _snapshot(self._policy, served=1, latency_mean=1.1),
            ]
        )
        # (9*0.1 + 1*1.1) / 10, not (0.1 + 1.1) / 2.
        assert merged.latency_mean == pytest.approx(0.2)
        assert merged.requests_served == 10

    def test_max_is_max_over_pools(self):
        merged = merge_stats(
            [
                _snapshot(self._policy, latency_max=0.3),
                _snapshot(self._policy, latency_max=2.5),
                _snapshot(self._policy, latency_max=0.9),
            ]
        )
        assert merged.latency_max == 2.5

    def test_zero_served_pools_cannot_poison_the_mean(self):
        """An idle pool (served=0, mean=0) contributes nothing to the
        weighted sum; a fleet of only idle pools reports 0.0, never a
        division error."""
        merged = merge_stats(
            [
                _snapshot(self._policy, served=4, latency_mean=0.25),
                _snapshot(self._policy, served=0, latency_mean=0.0),
            ]
        )
        assert merged.latency_mean == pytest.approx(0.25)
        idle = merge_stats(
            [
                _snapshot(self._policy, served=0, latency_mean=0.0),
                _snapshot(self._policy, served=0, latency_mean=0.0),
            ]
        )
        assert idle.latency_mean == 0.0
        assert merge_stats([]).latency_mean == 0.0
        assert merge_stats([]).latency_max == 0.0


class TestRegistration:
    def test_pools_spawn_lazily(self, registry, two_systems):
        (_, b1, _), _ = two_systems
        assert registry.live_pools() == []
        registry.solve(b1, matrix="one", timeout=WAIT)
        assert registry.live_pools() == ["one"]

    def test_duplicate_id_rejected(self, registry, two_systems):
        (A1, _, _), _ = two_systems
        with pytest.raises(ServeError, match="already registered"):
            registry.register("one", A1)

    def test_bad_id_rejected(self, registry, two_systems):
        (A1, _, _), _ = two_systems
        for bad in ("", None, 7):
            with pytest.raises(ServeError, match="non-empty string"):
                registry.register(bad, A1)

    def test_register_spec_problem(self, registry):
        info = registry.register_spec("lap", problem="laplace2d")
        assert info["registered"] == "lap"
        assert info["n"] > 0 and info["nnz"] > 0
        assert "lap" in registry.matrices()

    def test_register_spec_requires_exactly_one_source(self, registry):
        with pytest.raises(ServeError, match="exactly one"):
            registry.register_spec("x")
        with pytest.raises(ServeError, match="exactly one"):
            registry.register_spec("x", problem="laplace2d", path="foo.mtx")

    def test_register_spec_missing_file_is_a_serve_error(self, registry):
        with pytest.raises(ServeError, match="cannot read"):
            registry.register_spec("x", path="no/such/file.mtx")

    def test_register_after_close_rejected(self, two_systems):
        (A1, _, _), _ = two_systems
        reg = MatrixRegistry(nproc=1)
        reg.close()
        with pytest.raises(ServeError, match="closed"):
            reg.register("one", A1)


class TestRouting:
    def test_requests_reach_the_matrix_they_name(self, registry, two_systems):
        (A1, b1, _), (A2, b2, _) = two_systems
        r1 = registry.solve(b1, matrix="one", timeout=WAIT)
        r2 = registry.solve(b2, matrix="two", timeout=WAIT)
        ref1 = AsyRGS(A1, b1, nproc=1, engine="processes").solve(**SOLVE)
        ref2 = AsyRGS(A2, b2, nproc=1, engine="processes").solve(**SOLVE)
        np.testing.assert_array_equal(r1.x, ref1.x)
        np.testing.assert_array_equal(r2.x, ref2.x)

    def test_unrouted_requests_go_to_the_default(self, registry, two_systems):
        (A1, b1, x1), _ = two_systems
        assert registry.default_matrix == "one"  # first registered
        res = registry.solve(b1, timeout=WAIT)
        assert np.abs(res.x - x1).max() < 1e-5

    def test_explicit_default_overrides_registration_order(self, two_systems):
        (A1, _, _), (A2, b2, x2) = two_systems
        with MatrixRegistry(
            nproc=1, capacity_k=4, default="two", max_wait=0.0, **SOLVE
        ) as reg:
            reg.register("one", A1)
            reg.register("two", A2)
            res = reg.solve(b2, timeout=WAIT)
        assert np.abs(res.x - x2).max() < 1e-5

    def test_unknown_matrix_names_the_known_ones(self, registry, two_systems):
        (_, b1, _), _ = two_systems
        with pytest.raises(ServeError, match=r"unknown matrix 'three'.*one.*two"):
            registry.submit(b1, matrix="three")

    def test_empty_registry_rejects_requests(self):
        with MatrixRegistry(nproc=1) as reg:
            with pytest.raises(ServeError, match="no matrices registered"):
                reg.submit(np.ones(3))

    def test_submit_after_close_rejected(self, two_systems):
        (A1, b1, _), _ = two_systems
        reg = MatrixRegistry(nproc=1, capacity_k=4, **SOLVE)
        reg.register("one", A1)
        reg.close()
        with pytest.raises(ServeError, match="closed"):
            reg.submit(b1)


class TestEviction:
    def test_lru_eviction_and_respawn(self, two_systems):
        (A1, b1, x1), (A2, b2, x2) = two_systems
        with MatrixRegistry(
            nproc=1, capacity_k=4, max_live_pools=1, max_wait=0.0, **SOLVE
        ) as reg:
            reg.register("one", A1)
            reg.register("two", A2)
            reg.solve(b1, matrix="one", timeout=WAIT)
            assert reg.live_pools() == ["one"]
            # Routing to "two" must evict the idle "one" pool first.
            reg.solve(b2, matrix="two", timeout=WAIT)
            assert reg.live_pools() == ["two"]
            # Coming back respawns "one" — invisible in the result...
            res = reg.solve(b1, matrix="one", timeout=WAIT)
            assert np.abs(res.x - x1).max() < 1e-5
            # ...and the counters accumulate across the pool lifetimes.
            one = reg.stats("one")
            assert one.requests_served == 2
            assert one.spawn_count == 2  # original + post-eviction respawn
            assert reg.stats("two").spawn_count == 1
            assert reg.stats().requests_served == 3

    def test_busy_pools_are_never_evicted(self, two_systems):
        """The cap is soft: with a request in flight on the only other
        pool, the new spawn proceeds anyway instead of tearing down a
        pool mid-solve (or deadlocking)."""
        (A1, b1, _), (A2, b2, _) = two_systems
        with MatrixRegistry(
            nproc=1, capacity_k=4, max_live_pools=1, max_wait=0.0, **SOLVE
        ) as reg:
            reg.register("one", A1)
            reg.register("two", A2)
            reg.solve(b1, matrix="one", timeout=WAIT)
            srv_one = reg._entries["one"].server
            # Pin "one" as busy deterministically: an in-flight request
            # is exactly a submitted-but-not-finished counter gap.
            with srv_one._lock:
                srv_one._submitted += 1
            try:
                fast = reg.solve(b2, matrix="two", timeout=WAIT)
            finally:
                with srv_one._lock:
                    srv_one._submitted -= 1
            assert fast.converged
            assert set(reg.live_pools()) == {"one", "two"}
            assert reg.stats("one").spawn_count == 1  # never torn down

    def test_max_live_pools_validated(self):
        with pytest.raises(ServeError, match="at least 1"):
            MatrixRegistry(nproc=1, max_live_pools=0)


class TestObservability:
    def test_matrices_payload(self, registry, two_systems):
        (_, b1, _), _ = two_systems
        registry.solve(b1, matrix="one", timeout=WAIT)
        payload = registry.matrices_payload()
        by_name = {entry["matrix"]: entry for entry in payload}
        assert set(by_name) == {"one", "two"}
        assert by_name["one"]["default"] and not by_name["two"]["default"]
        assert by_name["one"]["live"] and not by_name["two"]["live"]
        assert by_name["one"]["requests_served"] == 1
        assert by_name["two"]["requests_served"] == 0
        assert by_name["one"]["n"] == 30

    def test_stats_payload_shapes(self, registry, two_systems):
        (_, b1, _), _ = two_systems
        registry.solve(b1, matrix="one", timeout=WAIT)
        everything = registry.stats_payload()
        assert everything["aggregate"]["requests_served"] == 1
        assert set(everything["matrices"]) == {"one", "two"}
        just_one = registry.stats_payload("one")
        assert just_one["matrix"] == "one"
        assert just_one["requests_served"] == 1

    def test_stats_survive_close(self, two_systems):
        (A1, b1, _), _ = two_systems
        reg = MatrixRegistry(nproc=1, capacity_k=4, max_wait=0.0, **SOLVE)
        reg.register("one", A1)
        reg.solve(b1, matrix="one", timeout=WAIT)
        reg.close()
        reg.close()  # idempotent
        assert reg.stats("one").requests_served == 1

    def test_close_counts_requests_served_during_the_drain(self, two_systems):
        """close() drains in-flight work before snapshotting a pool's
        counters — a request completing during the drain must appear in
        the lifetime stats, not vanish into a pre-drain snapshot."""
        (A1, b1, _), _ = two_systems
        reg = MatrixRegistry(nproc=1, capacity_k=4, max_wait=0.0, **SOLVE)
        reg.register("one", A1)
        handles = [reg.submit(b1 * (j + 1.0), matrix="one") for j in range(4)]
        reg.close()
        for h in handles:
            assert h.result(WAIT).converged
        stats = reg.stats("one")
        assert stats.requests_submitted == 4
        assert stats.requests_served == 4


class TestWireProtocol:
    def test_matrix_field_routes_and_default_wire_format_works(
        self, registry, two_systems
    ):
        (_, b1, x1), (_, b2, x2) = two_systems
        lines = [
            json.dumps({"id": "r1", "b": b1.tolist()}),  # default -> "one"
            json.dumps({"id": "r2", "b": b2.tolist(), "matrix": "two"}),
            json.dumps({"id": "r3", "b": b1.tolist(), "matrix": "nope"}),
        ]
        out = io.StringIO()
        handled = serve_stream(registry, iter(lines), out)
        assert handled == 3
        r1, r2, r3 = [json.loads(ln) for ln in out.getvalue().splitlines()]
        assert r1["ok"] and np.abs(np.asarray(r1["x"]) - x1).max() < 1e-5
        assert r2["ok"] and np.abs(np.asarray(r2["x"]) - x2).max() < 1e-5
        assert r3["ok"] is False and r3["id"] == "r3"
        assert "unknown matrix" in r3["error"]

    def test_register_stats_matrices_verbs(self, registry, two_systems):
        from repro.workloads import get_problem

        prob = get_problem("social-small")
        prob_b = prob.b
        lines = [
            json.dumps(
                {"op": "register", "id": "reg", "matrix": "soc",
                 "problem": "social-small"}
            ),
            json.dumps(
                {"id": "s1", "b": prob_b.tolist(), "matrix": "soc",
                 "tol": 1e-4, "max_sweeps": 800}
            ),
            json.dumps({"op": "stats", "id": "st", "matrix": "soc"}),
            json.dumps({"op": "matrices", "id": "mx"}),
        ]
        out = io.StringIO()
        serve_stream(registry, iter(lines), out)
        reg, s1, st, mx = [json.loads(ln) for ln in out.getvalue().splitlines()]
        assert reg.pop("trace_id").startswith("t-")
        assert reg == {
            "id": "reg", "ok": True, "registered": "soc",
            "n": prob.n, "nnz": prob.A.nnz, "source": "social-small",
            "method": "asyrgs", "shards": 1,
        }
        assert s1["ok"] and s1["converged"]
        assert st["ok"] and st["matrix"] == "soc"
        assert st["requests_served"] == 1
        assert mx["ok"]
        assert {m["matrix"] for m in mx["matrices"]} == {"one", "two", "soc"}

    def test_register_verb_on_single_matrix_server_is_clean(self, system):
        from repro.serve import SolverServer

        A, _, _ = system
        with SolverServer(A, nproc=1, capacity_k=2) as srv:
            out = io.StringIO()
            serve_stream(
                srv,
                iter([json.dumps({"op": "register", "id": "r",
                                  "matrix": "m", "problem": "laplace2d"})]),
                out,
            )
        (resp,) = [json.loads(ln) for ln in out.getvalue().splitlines()]
        assert resp["ok"] is False and resp["id"] == "r"
        assert "registry front door" in resp["error"]


class TestAsyRKOverTheWire:
    """The acceptance path for per-matrix update methods: a rectangular
    least-squares system registered with ``method=asyrk`` solves to its
    normal-equations tolerance over the JSON-lines wire, next to a
    square AsyRGS matrix, and the method is visible on every
    observability surface (register echo, per-matrix stats, the
    matrices listing, and the mixed aggregate breakdown)."""

    def test_rectangular_ls_solves_and_reports_method(
        self, two_systems, tmp_path
    ):
        (A1, b1, x1), _ = two_systems
        prob = random_least_squares(
            60, 20, nnz_per_row=5, noise_scale=0.01, seed=7
        )
        path = tmp_path / "ls.mtx"
        write_matrix_market(prob.A, path)
        lines = [
            json.dumps({"op": "register", "id": "reg", "matrix": "ls",
                        "path": str(path), "method": "asyrk"}),
            json.dumps({"id": "q1", "b": b1.tolist()}),
            json.dumps({"id": "q2", "b": prob.b.tolist(), "matrix": "ls",
                        "tol": 2e-2, "max_sweeps": 400}),
            json.dumps({"op": "stats", "id": "st", "matrix": "ls"}),
            json.dumps({"op": "matrices", "id": "mx"}),
        ]
        with MatrixRegistry(
            nproc=1, capacity_k=2, max_wait=0.0, **SOLVE
        ) as reg:
            reg.register("sq", A1)
            out = io.StringIO()
            handled = serve_stream(reg, iter(lines), out)
            agg = reg.stats()
        regd, q1, q2, st, mx = [
            json.loads(ln) for ln in out.getvalue().splitlines()
        ]
        assert handled == 5
        assert regd["ok"] and regd["method"] == "asyrk"
        assert q1["ok"] and np.abs(np.asarray(q1["x"]) - x1).max() < 1e-5
        assert q2["ok"] and q2["converged"]
        x = np.asarray(q2["x"])
        assert x.shape == (prob.A.shape[1],)
        # The request's tolerance is on the normal-equations residual —
        # the plain residual cannot vanish on this noisy system.
        At = prob.A.transpose()
        ne = float(
            np.linalg.norm(At.matvec(prob.b - prob.A.matvec(x)))
            / np.linalg.norm(At.matvec(prob.b))
        )
        assert ne < 2e-2
        assert st["ok"] and st["method"] == "asyrk"
        methods = {m["matrix"]: m["method"] for m in mx["matrices"]}
        assert methods == {"sq": "asyrgs", "ls": "asyrk"}
        assert agg.method == {
            "method": "mixed", "methods": {"asyrgs": 1, "asyrk": 1}
        }
