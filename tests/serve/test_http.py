"""HTTP front-end tests: the same protocol over ``POST /v1/solve``,
``GET /v1/stats``, and ``GET /v1/matrices``.

The HTTP handler submits through the same :func:`handle_line` seam as
the JSON-lines transports, so everything the stream tests pin —
correctness against the serial solve, error envelopes, id echo — holds
here too; these tests pin the HTTP-specific surface (routes, status
codes, concurrent handler threads coalescing, worker-crash containment
over a web request).
"""

import http.client
import json
import multiprocessing
import threading

import numpy as np
import pytest

import repro.execution.pool as processes_module
from repro.serve import MatrixRegistry, SolverServer, make_http_server

from .conftest import WAIT

pytestmark = pytest.mark.serve


@pytest.fixture()
def server(system):
    A, _, _ = system
    with SolverServer(
        A, nproc=1, capacity_k=4, tol=1e-8, max_sweeps=300,
        sync_every_sweeps=10, max_wait=0.05,
    ) as srv:
        yield srv


class _Client:
    """One keep-alive HTTP/1.1 connection to the front-end under test."""

    def __init__(self, address):
        host, port = address[:2]
        self.conn = http.client.HTTPConnection(host, port, timeout=WAIT)

    def request(self, method, path, body=None):
        self.conn.request(
            method, path,
            body=None if body is None else body.encode("utf-8"),
        )
        resp = self.conn.getresponse()
        return resp.status, json.loads(resp.read().decode("utf-8"))

    def close(self):
        self.conn.close()


@pytest.fixture()
def http_front(server):
    httpd = make_http_server(server, "127.0.0.1", 0)
    runner = threading.Thread(target=httpd.serve_forever, daemon=True)
    runner.start()
    client = _Client(httpd.server_address)
    try:
        yield client, server
    finally:
        client.close()
        httpd.shutdown()
        httpd.server_close()


class TestSolveRoute:
    def test_solve_roundtrip(self, http_front, system):
        A, b, _ = system
        client, _ = http_front
        status, resp = client.request(
            "POST", "/v1/solve", json.dumps({"id": "h1", "b": b.tolist()})
        )
        assert status == 200
        assert resp["ok"] and resp["converged"]
        assert resp["id"] == "h1"
        x = np.asarray(resp["x"])
        assert np.linalg.norm(b - A.matvec(x)) < 1e-6 * np.linalg.norm(b)

    def test_malformed_body_is_400_with_id_echo(self, http_front):
        client, _ = http_front
        status, resp = client.request(
            "POST", "/v1/solve", json.dumps({"id": "bad", "b": [1.0], "huh": 2})
        )
        assert status == 400
        assert resp["ok"] is False
        assert resp["id"] == "bad"  # valid JSON => id echoed
        assert "unknown request field" in resp["error"]

    def test_unparseable_body_is_400_with_null_id(self, http_front):
        client, _ = http_front
        status, resp = client.request("POST", "/v1/solve", "not json at all")
        assert status == 400
        assert resp["ok"] is False and resp["id"] is None

    def test_unknown_route_is_404(self, http_front):
        client, _ = http_front
        status, resp = client.request("POST", "/v1/nope", "{}")
        assert status == 404 and resp["ok"] is False
        status, resp = client.request("GET", "/v1/nope")
        assert status == 404 and resp["ok"] is False

    def test_concurrent_posts_coalesce_on_one_pool(self, system):
        """Handler threads share the submission seam, so simultaneous
        HTTP clients batch together exactly like TCP ones."""
        A, b, _ = system
        n_clients = 6
        with SolverServer(
            A, nproc=1, capacity_k=n_clients, tol=1e-8, max_sweeps=300,
            sync_every_sweeps=10, max_wait=2.0,
        ) as srv:
            httpd = make_http_server(srv, "127.0.0.1", 0)
            runner = threading.Thread(target=httpd.serve_forever, daemon=True)
            runner.start()
            results = [None] * n_clients
            errors = []

            def post(j):
                try:
                    client = _Client(httpd.server_address)
                    try:
                        results[j] = client.request(
                            "POST", "/v1/solve",
                            json.dumps(
                                {"id": j, "b": (b * (1.0 + j)).tolist()}
                            ),
                        )
                    finally:
                        client.close()
                except Exception as exc:  # noqa: BLE001
                    errors.append(exc)

            try:
                threads = [
                    threading.Thread(target=post, args=(j,))
                    for j in range(n_clients)
                ]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join()
                stats = srv.stats()
            finally:
                httpd.shutdown()
                httpd.server_close()
        assert not errors, errors
        for j, (status, resp) in enumerate(results):
            assert status == 200
            assert resp["ok"] and resp["converged"] and resp["id"] == j
        # The burst really shared solves: fewer batches than requests
        # (the first may have launched alone before the burst landed).
        assert stats.batches < n_clients
        assert stats.max_batch_size >= 2

    def test_get_stats(self, http_front, system):
        _, b, _ = system
        client, _ = http_front
        client.request(
            "POST", "/v1/solve", json.dumps({"b": b.tolist()})
        )
        status, resp = client.request("GET", "/v1/stats")
        assert status == 200 and resp["ok"]
        assert resp["requests_served"] == 1
        assert resp["policy"]["policy"] == "fixed"

    def test_get_matrices(self, http_front, system):
        client, _ = http_front
        status, resp = client.request("GET", "/v1/matrices")
        assert status == 200 and resp["ok"]
        (entry,) = resp["matrices"]
        assert entry["default"] is True
        assert entry["n"] == 30


class TestRegistryOverHTTP:
    @pytest.fixture()
    def registry_front(self, system, block_system):
        A, _, _ = system
        with MatrixRegistry(
            nproc=1, capacity_k=4, tol=1e-8, max_sweeps=300,
            sync_every_sweeps=10, max_wait=0.0,
        ) as reg:
            reg.register("main", A)
            httpd = make_http_server(reg, "127.0.0.1", 0)
            runner = threading.Thread(target=httpd.serve_forever, daemon=True)
            runner.start()
            client = _Client(httpd.server_address)
            try:
                yield client, reg
            finally:
                client.close()
                httpd.shutdown()
                httpd.server_close()

    def test_routes_by_matrix_field_and_lists_matrices(
        self, registry_front, system
    ):
        A, b, _ = system
        client, _ = registry_front
        status, resp = client.request(
            "POST", "/v1/solve",
            json.dumps({"id": "r", "b": b.tolist(), "matrix": "main"}),
        )
        assert status == 200 and resp["ok"]
        status, resp = client.request(
            "POST", "/v1/solve",
            json.dumps({"id": "r2", "b": b.tolist(), "matrix": "ghost"}),
        )
        assert status == 400
        assert "unknown matrix" in resp["error"]
        status, resp = client.request("GET", "/v1/matrices")
        assert status == 200
        assert [m["matrix"] for m in resp["matrices"]] == ["main"]

    def test_register_verb_through_solve_route(self, registry_front):
        """POST /v1/solve speaks the whole protocol — control verbs
        included — because it rides the shared handle_line seam."""
        from repro.workloads import get_problem

        client, reg = registry_front
        status, resp = client.request(
            "POST", "/v1/solve",
            json.dumps(
                {"op": "register", "id": "reg1", "matrix": "soc",
                 "problem": "social-small"}
            ),
        )
        assert status == 200 and resp["ok"]
        assert resp["registered"] == "soc"
        assert "soc" in reg.matrices()
        prob = get_problem("social-small")
        status, resp = client.request(
            "POST", "/v1/solve",
            json.dumps(
                {"id": "s", "b": prob.b.tolist(), "matrix": "soc",
                 "tol": 1e-4, "max_sweeps": 800}
            ),
        )
        assert status == 200 and resp["ok"] and resp["converged"]

    def test_per_matrix_stats_query(self, registry_front, system):
        _, b, _ = system
        client, _ = registry_front
        client.request(
            "POST", "/v1/solve", json.dumps({"b": b.tolist()})
        )
        status, resp = client.request("GET", "/v1/stats?matrix=main")
        assert status == 200
        assert resp["matrix"] == "main"
        assert resp["requests_served"] == 1
        status, resp = client.request("GET", "/v1/stats")
        assert status == 200
        assert resp["aggregate"]["requests_served"] == 1
        status, resp = client.request("GET", "/v1/stats?matrix=ghost")
        assert status == 400
        assert "unknown matrix" in resp["error"]


@pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fault injection rides fork inheritance",
)
class TestWorkerCrashOverHTTP:
    def test_crash_is_a_400_naming_the_worker_and_the_server_recovers(
        self, system, tmp_path, monkeypatch
    ):
        """The stress suite's fork-inherited fault injection, replayed
        over a web request: a worker dying mid-solve answers this
        request ``ok: false`` with the guilty worker id, and the next
        request respawns the pool and succeeds."""
        A, b, _ = system
        flag = tmp_path / "crash-armed"
        flag.touch()
        real_loop = processes_module._worker_loop

        def crashing_loop(wid, *args, **kwargs):
            if wid == 1 and flag.exists():
                raise RuntimeError("injected worker crash")
            return real_loop(wid, *args, **kwargs)

        monkeypatch.setattr(processes_module, "_worker_loop", crashing_loop)
        with SolverServer(
            A, nproc=2, capacity_k=2, tol=1e-8, max_sweeps=200,
            sync_every_sweeps=10, max_wait=0.0, start_method="fork",
            barrier_timeout=60.0,
        ) as srv:
            httpd = make_http_server(srv, "127.0.0.1", 0)
            runner = threading.Thread(target=httpd.serve_forever, daemon=True)
            runner.start()
            client = _Client(httpd.server_address)
            try:
                status, resp = client.request(
                    "POST", "/v1/solve",
                    json.dumps({"id": "doomed", "b": b.tolist()}),
                )
                assert status == 400
                assert resp["ok"] is False and resp["id"] == "doomed"
                assert "worker process 1 crashed" in resp["error"]

                flag.unlink()  # heal: the respawned pool is clean
                status, resp = client.request(
                    "POST", "/v1/solve",
                    json.dumps({"id": "healed", "b": b.tolist()}),
                )
                assert status == 200
                assert resp["ok"] and resp["converged"]
            finally:
                client.close()
                httpd.shutdown()
                httpd.server_close()
        assert srv.spawn_count == 2  # the one honest respawn
