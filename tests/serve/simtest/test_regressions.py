"""Regression tests for the four concurrency bugs this harness flushed
out, each paired with its pre-fix exemplar (:mod:`.exemplars`).

Every pair runs the *same scenario on the same recorded seed* against
the fixed code and the pre-fix replica: the fixed code passes, the
replica reproduces the original failure deterministically. The seeds
were found by schedule exploration and are pinned here — replaying one
by hand is ``pytest tests/serve/simtest --sim-seed=<seed>``.
"""

from __future__ import annotations

import pytest

import repro.serve.registry as registry_mod
from repro.serve import make_policy

from .drivers import (
    run_adaptive_linger,
    run_dispatcher_death,
    run_registry_policies,
    run_stash_depth,
)
from .exemplars import (
    RacyDepthServer,
    WedgingServer,
    buggy_make_policy,
    buggy_merge_stats,
)
from .scheduler import SimDeadlock

pytestmark = pytest.mark.simtest


class TestDispatcherDeath:
    """Bugfix 1: a dispatcher killed by a non-``Exception``
    ``BaseException`` must mark the server broken, not wedge it."""

    # Any schedule reproduces this one (the scenario serializes on the
    # dispatcher's exit); 0 is the canonical recorded seed.
    SEED = 0

    def test_fixed_server_fails_fast_naming_the_cause(self):
        outcome = run_dispatcher_death(self.SEED)
        assert outcome["result_error"] is not None
        err = outcome["submit_error"] or outcome["late_error"]
        assert err is not None
        assert "KeyboardInterrupt" in err and "injected fault" in err

    def test_prefix_server_wedges(self):
        # Pre-fix: _closed stays False after the dispatcher dies, the
        # late submit enqueues forever, result() blocks a queue nothing
        # pops — the harness reports the wedge instead of hanging.
        with pytest.raises(SimDeadlock, match="second-client"):
            run_dispatcher_death(self.SEED, server_cls=WedgingServer)


class TestAdaptiveZeroMaxWait:
    """Bugfix 2: ``policy="adaptive"`` with an explicit ``max_wait=0``
    must never linger ("0 disables lingering")."""

    SEED = 0

    def test_fixed_policy_honors_zero(self):
        queue_wait, snapshot = run_adaptive_linger(self.SEED)
        assert queue_wait < 0.02
        assert snapshot["ewma_queue_depth"] >= 0.5  # the gate was crossed
        assert snapshot["current_window"] == 0.0

    def test_prefix_policy_stalls_the_lone_request(self):
        # Pre-fix make_policy raised the cap to max(0.05, 0) = 50 ms:
        # once the EWMAs land, the lone request pays the full window.
        queue_wait, _ = run_adaptive_linger(
            self.SEED, policy=buggy_make_policy("adaptive", 0.0)
        )
        assert queue_wait >= 0.04

    def test_make_policy_contract_both_policies(self):
        # The non-simulated contract check: an explicit 0 collapses the
        # adaptive cap; the fixed policy already honored it.
        adaptive = make_policy("adaptive", 0.0)
        assert adaptive.max_wait == 0.0
        adaptive.observe(batch_size=1, queue_depth=6, solve_wall=0.4)
        adaptive.observe(batch_size=1, queue_depth=6, solve_wall=0.4)
        assert adaptive.linger(6) == 0.0
        assert make_policy("fixed", 0.0).linger(6) == 0.0


class TestStashDepthRace:
    """Bugfix 3: ``submit()`` computed the queue-depth high-water mark
    from an unsynchronized read of the dispatcher-private ``_stash``."""

    # Found by sweeping seeds 0..399 against the pre-fix replica: the
    # first schedule where the dispatcher stashes a request the client
    # has already counted in qsize() before the client reads _stash.
    SEED = 16

    def test_fixed_server_bounds_the_high_water_mark(self):
        assert run_stash_depth(self.SEED) <= 2

    def test_prefix_server_double_counts(self):
        assert run_stash_depth(self.SEED, server_cls=RacyDepthServer) == 3


class TestMergeStatsPolicy:
    """Bugfix 4: the registry aggregate stamped the whole fleet with
    whichever pool's snapshot came last."""

    SEED = 0

    def test_fixed_aggregate_reports_the_breakdown(self):
        payload = run_registry_policies(self.SEED)
        assert payload["aggregate"]["policy"] == {
            "policy": "mixed",
            "pools": 2,
            "policies": {"fixed": 1, "adaptive": 1},
        }

    def test_prefix_aggregate_misreports_one_pool(self, monkeypatch):
        monkeypatch.setattr(registry_mod, "merge_stats", buggy_merge_stats)
        payload = run_registry_policies(self.SEED)
        # Pre-fix: the last-registered pool ("ad", adaptive) speaks for
        # the whole registry even though half the pools run "fixed".
        assert payload["aggregate"]["policy"]["policy"] == "adaptive"
