"""Simulation scenarios: the serving stack under seeded schedules.

Each driver builds a :class:`~tests.serve.simtest.scheduler.SimScheduler`
around the *real* serving code — :class:`~repro.serve.SolverServer`,
:class:`~repro.serve.MatrixRegistry`, the real batching policies — with
only the pool faked (:mod:`.fakes`), runs one seeded schedule to
completion, asserts the invariants that must hold under **every**
interleaving (exact results, conserved counters, no hung requests), and
returns what the calling test wants to inspect.

:func:`explore` sweeps a driver across a seed range; any failure is
re-raised annotated with the seed and the exact replay command, which
is the harness's contract: a red schedule is a deterministic artifact,
not a flake.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ServeError
from repro.serve import FixedWait, MatrixRegistry, SolutionCache, SolverServer

from .fakes import FakePool, diagonal_system, fake_factory
from .scheduler import SimScheduler

__all__ = [
    "GatePolicy",
    "explore",
    "run_adaptive_linger",
    "run_cache_crash",
    "run_cache_dedupe",
    "run_cache_eviction_race",
    "run_dispatcher_death",
    "run_halo_partition",
    "run_halo_reconnect",
    "run_halo_slow_peer",
    "run_mixed_methods",
    "run_registry_policies",
    "run_registry_traffic",
    "run_server_traffic",
    "run_shard_crash",
    "run_stash_depth",
]

N = 8  # system size for every scenario

#: Powers of two so ``b / diag`` is exact in floating point: result
#: assertions are equality, never tolerance.
_DIAG = 2.0 ** (np.arange(N) % 3)


def _rhs(tag: int) -> np.ndarray:
    """A per-request RHS unique to ``tag``: any cross-wiring of batch
    slices or requests produces an exact mismatch."""
    return float(tag + 1) * (np.arange(N) + 1.0)


def explore(scenario, seeds, check=None, **kwargs):
    """Run ``scenario(seed, **kwargs)`` for every seed; ``check`` (if
    given) validates each return value. Failures re-raise annotated
    with the seed and the replay command."""
    outcomes = []
    for seed in seeds:
        try:
            out = scenario(seed, **kwargs)
            if check is not None:
                check(out)
            outcomes.append(out)
        except Exception as exc:
            raise AssertionError(
                f"{scenario.__name__} failed at seed {seed} — replay with: "
                f"pytest tests/serve/simtest --sim-seed={seed} "
                f"-k {scenario.__name__}  ({type(exc).__name__}: {exc})"
            ) from exc
    return outcomes


class GatePolicy(FixedWait):
    """FixedWait that signals an event when the dispatcher first calls
    :meth:`linger` — scenario plumbing to hold client submissions until
    a batch's first occupant is being gathered."""

    def __init__(self, max_wait: float, gate):
        super().__init__(max_wait)
        self._gate = gate

    def linger(self, queue_depth: int) -> float:
        self._gate.set()
        return self.max_wait


# ---------------------------------------------------------------------------
# Generic traffic scenarios (the exploration workhorses)
# ---------------------------------------------------------------------------


def run_server_traffic(
    seed: int,
    *,
    server_cls=SolverServer,
    n_clients: int = 3,
    per_client: int = 2,
    policy="fixed",
    max_wait: float = 0.002,
    capacity_k: int = 4,
    solve_time: float = 0.01,
    mixed_keys: bool = True,
    record_trace: bool = False,
):
    """Concurrent clients against one server: submit bursts, await all,
    assert exact answers and conserved counters under the seed's
    schedule. ``mixed_keys`` alternates per-request tolerances so
    incompatible neighbors exercise the stash path."""
    sched = SimScheduler(seed, record_trace=record_trace)
    A = diagonal_system(_DIAG)
    pools: list = []
    server = server_cls(
        A,
        nproc=2,
        capacity_k=capacity_k,
        max_wait=max_wait,
        policy=policy,
        runtime=sched.runtime,
        solver_factory=fake_factory(
            sleep=sched.sleep, solve_time=solve_time, made=pools
        ),
    )

    def client(idx: int):
        def work():
            handles = []
            for j in range(per_client):
                tag = idx * per_client + j
                kwargs = {}
                if mixed_keys and tag % 2:
                    kwargs["tol"] = 1e-3
                handles.append((tag, server.submit(_rhs(tag), **kwargs)))
            for tag, h in handles:
                res = h.result()
                assert np.array_equal(res.x, _rhs(tag) / _DIAG), (
                    f"request {tag} got another request's answer"
                )
                assert res.batch_size >= 1
                assert res.latency >= res.queue_wait >= 0.0

        return work

    clients = [
        sched.task(client(i), name=f"client-{i}") for i in range(n_clients)
    ]

    def closer():
        for h in clients:
            h.join()
        server.close()

    sched.task(closer, name="closer")
    sched.run()

    total = n_clients * per_client
    stats = server.stats()
    assert stats.requests_submitted == total
    assert stats.requests_served == total
    assert stats.requests_failed == 0
    assert stats.batches == pools[0].solve_calls
    assert stats.max_batch_size <= capacity_k
    assert stats.max_queue_depth <= total
    assert sum(pools[0].solved_widths) == total
    assert not sched.daemon_failures
    return {"stats": stats, "trace": sched.trace, "steps": sched.steps}


def run_registry_traffic(
    seed: int,
    *,
    n_matrices: int = 3,
    max_live_pools: int = 2,
    n_clients: int = 3,
    per_client: int = 2,
):
    """Concurrent clients routed across several registered matrices with
    a pool cap that forces live LRU eviction mid-traffic. Each matrix
    is a distinctly-scaled diagonal, so a request solved against the
    wrong resident matrix is an exact mismatch."""
    sched = SimScheduler(seed)
    pools: list = []
    registry = MatrixRegistry(
        nproc=1,
        max_live_pools=max_live_pools,
        capacity_k=4,
        max_wait=0.002,
        runtime=sched.runtime,
        solver_factory=fake_factory(
            sleep=sched.sleep, solve_time=0.01, made=pools
        ),
    )
    names = [f"m{i}" for i in range(n_matrices)]
    scales = [2.0**i for i in range(n_matrices)]
    for name, scale in zip(names, scales):
        registry.register(name, diagonal_system(scale * _DIAG))

    def client(idx: int):
        def work():
            for j in range(per_client):
                tag = idx * per_client + j
                which = (idx + j) % n_matrices
                # Exercise default routing too: m0 is the default.
                matrix = None if which == 0 else names[which]
                h = registry.submit(_rhs(tag), matrix=matrix)
                res = h.result()
                expect = _rhs(tag) / (scales[which] * _DIAG)
                assert np.array_equal(res.x, expect), (
                    f"request {tag} was solved against the wrong matrix"
                )

        return work

    clients = [
        sched.task(client(i), name=f"client-{i}") for i in range(n_clients)
    ]

    def closer():
        for h in clients:
            h.join()
        registry.close()

    sched.task(closer, name="closer")
    sched.run()

    total = n_clients * per_client
    agg = registry.stats()
    assert agg.requests_submitted == total
    assert agg.requests_served == total
    assert agg.requests_failed == 0
    assert agg.spawn_count == sum(p.spawn_count for p in pools)
    assert not sched.daemon_failures
    return {"aggregate": agg, "pools_built": len(pools), "steps": sched.steps}


# ---------------------------------------------------------------------------
# Bugfix scenarios (regression drivers; see test_regressions.py)
# ---------------------------------------------------------------------------


def run_dispatcher_death(seed: int, *, server_cls=SolverServer):
    """A ``BaseException`` (KeyboardInterrupt) kills the dispatcher on
    the first batch; a second client then submits against the dead
    server. Post-fix it gets a fast :class:`ServeError` naming the
    cause; pre-fix its ``result()`` blocks a queue nothing pops — the
    harness reports that wedge as ``SimDeadlock``."""
    sched = SimScheduler(seed)
    server = server_cls(
        diagonal_system(_DIAG),
        nproc=1,
        capacity_k=2,
        max_wait=0.0,
        runtime=sched.runtime,
        solver_factory=fake_factory(
            sleep=sched.sleep,
            solve_time=0.01,
            fail_on={1: KeyboardInterrupt("injected fault")},
        ),
    )
    outcome = {"result_error": None, "submit_error": None, "late_error": None}

    def first():
        h = server.submit(_rhs(0))
        try:
            h.result()
        except ServeError as exc:
            outcome["result_error"] = str(exc)

    def second():
        # Wait until the dispatcher has fully exited, so pre-fix code
        # deterministically wedges (its exit drain has already run).
        server._dispatcher.join()
        try:
            h = server.submit(_rhs(1))
        except ServeError as exc:
            outcome["submit_error"] = str(exc)
            return
        try:
            h.result()  # no timeout: pre-fix, this waits forever
        except ServeError as exc:
            outcome["late_error"] = str(exc)

    tasks = [
        sched.task(first, name="first-client"),
        sched.task(second, name="second-client"),
    ]

    def closer():
        for h in tasks:
            h.join()
        server.close()

    sched.task(closer, name="closer")
    sched.run()

    assert outcome["result_error"] is not None, (
        "the first request must fail with the batch error"
    )
    failures = sched.daemon_failures
    assert len(failures) == 1 and isinstance(failures[0], KeyboardInterrupt)
    return outcome


def run_stash_depth(seed: int, *, server_cls=SolverServer):
    """Three requests, never more than two waiting at once: r1 is being
    gathered (long linger window) when incompatible r2 arrives and gets
    stashed, while r3's ``submit`` runs concurrently with the stash
    transition. Returns the queue-depth high-water mark, whose true
    bound is 2 — the pre-fix unsynchronized ``_stash`` read in
    ``submit()`` can double-count r2 (once in the queue snapshot, once
    in the stash) and report 3."""
    sched = SimScheduler(seed)
    gate = sched.runtime.event()
    second_in = sched.runtime.event()
    server = server_cls(
        diagonal_system(_DIAG),
        nproc=1,
        capacity_k=2,
        max_wait=5.0,
        policy=GatePolicy(5.0, gate),
        runtime=sched.runtime,
        solver_factory=fake_factory(sleep=sched.sleep, solve_time=0.005),
    )

    def first():
        h = server.submit(_rhs(0))
        res = h.result()
        assert np.array_equal(res.x, _rhs(0) / _DIAG)

    def second():
        gate.wait()  # r1 is in-gather: its linger window is open
        h = server.submit(_rhs(1), tol=1e-3)  # incompatible -> stashed
        second_in.set()
        res = h.result()
        assert np.array_equal(res.x, _rhs(1) / _DIAG)

    def third():
        second_in.wait()
        h = server.submit(_rhs(2), tol=1e-3)
        res = h.result()
        assert np.array_equal(res.x, _rhs(2) / _DIAG)

    tasks = [
        sched.task(first, name="first-client"),
        sched.task(second, name="second-client"),
        sched.task(third, name="third-client"),
    ]

    def closer():
        for h in tasks:
            h.join()
        server.close()

    sched.task(closer, name="closer")
    sched.run()

    stats = server.stats()
    assert stats.requests_served == 3
    assert not sched.daemon_failures
    return stats.max_queue_depth


def run_adaptive_linger(
    seed: int, *, policy="adaptive", max_wait: float = 0.0, burst: int = 6
):
    """An open-loop burst trains the adaptive EWMAs (deep queue, slow
    solves), then one request arrives alone. With ``max_wait=0`` the
    operator disabled lingering, so the lone request's queue wait must
    be scheduling noise only; the pre-fix ``make_policy`` cap of
    ``max(0.05, max_wait)`` stalls it ~50 ms of simulated time once the
    measurements land. Returns ``(lone_queue_wait, policy_snapshot)``."""
    sched = SimScheduler(seed)
    server = SolverServer(
        diagonal_system(_DIAG),
        nproc=1,
        capacity_k=2,
        max_wait=max_wait,
        policy=policy,
        runtime=sched.runtime,
        solver_factory=fake_factory(sleep=sched.sleep, solve_time=0.2),
    )
    lone = {}

    def client():
        handles = [server.submit(_rhs(t)) for t in range(burst)]
        for t, h in enumerate(handles):
            res = h.result()
            assert np.array_equal(res.x, _rhs(t) / _DIAG)
        res = server.submit(_rhs(burst)).result()
        assert np.array_equal(res.x, _rhs(burst) / _DIAG)
        lone["queue_wait"] = res.queue_wait

    h = sched.task(client, name="client")

    def closer():
        h.join()
        server.close()

    sched.task(closer, name="closer")
    sched.run()

    assert not sched.daemon_failures
    return lone["queue_wait"], server.policy.snapshot()


def run_registry_policies(seed: int):
    """Two matrices running *different* batching policies behind one
    registry; returns the ``/v1/stats`` payload. Pre-fix,
    ``merge_stats`` stamped the whole aggregate with whichever pool's
    snapshot came last."""
    sched = SimScheduler(seed)
    registry = MatrixRegistry(
        nproc=1,
        capacity_k=2,
        max_wait=0.002,
        runtime=sched.runtime,
        solver_factory=fake_factory(sleep=sched.sleep, solve_time=0.01),
    )
    registry.register("fx", diagonal_system(_DIAG), policy="fixed")
    registry.register("ad", diagonal_system(2.0 * _DIAG), policy="adaptive")

    def client(name: str, scale: float, tag: int):
        def work():
            res = registry.submit(_rhs(tag), matrix=name).result()
            assert np.array_equal(res.x, _rhs(tag) / (scale * _DIAG))

        return work

    tasks = [
        sched.task(client("fx", 1.0, 0), name="client-fx"),
        sched.task(client("ad", 2.0, 1), name="client-ad"),
    ]

    def closer():
        for h in tasks:
            h.join()
        registry.close()

    sched.task(closer, name="closer")
    sched.run()

    assert not sched.daemon_failures
    return registry.stats_payload()


def run_shard_crash(seed: int, *, shards: int = 3):
    """A shard dies mid-solve behind the gateway; the blast radius must
    be exactly one matrix's in-flight batch.

    Two matrices share the registry: ``big`` registered with
    ``shards=3`` (its fake pool scripts a shard death on the first
    batch, raising the coordinator's own ``ModelError`` shape) and
    ``small`` on the classic single pool. The first ``big`` request
    must fail with a :class:`ServeError` *naming the guilty shard id*;
    ``small`` traffic running concurrently must keep getting exact
    answers; the next ``big`` request after the crash must succeed
    against the respawned shard set (all N spawned together — the
    spawn counter moves in steps of N); and the dispatcher must survive
    — a shard crash is a batch failure, never a daemon death or a
    wedge. The stats must report the heterogeneity honestly: per-matrix
    shard counts, per-shard update lists, and the aggregate's
    ``{"shards": "mixed"}`` breakdown.
    """
    sched = SimScheduler(seed)
    pools: list = []

    def factory(A, x_block, **kwargs):
        opts = {}
        if int(kwargs.get("shards", 1)) > 1:
            # First batch on the sharded matrix: shard 1 dies.
            opts["fail_shard_on"] = {1: 1}
        pool = FakePool(
            A, x_block, sleep=sched.sleep, solve_time=0.01,
            **opts, **kwargs,
        )
        pools.append(pool)
        return pool

    registry = MatrixRegistry(
        nproc=1,
        # big weighs `shards` pools against the cap, small weighs 1;
        # the cap admits both, so shard-weighted accounting is what
        # keeps this scenario eviction-free.
        max_live_pools=shards + 1,
        capacity_k=4,
        max_wait=0.002,
        runtime=sched.runtime,
        solver_factory=factory,
    )
    registry.register("big", diagonal_system(_DIAG), shards=shards)
    registry.register("small", diagonal_system(2.0 * _DIAG))

    crashed = sched.runtime.event()
    outcome = {"error": None, "late_ok": False}

    def big_first():
        h = registry.submit(_rhs(0), matrix="big")
        try:
            h.result()
        except ServeError as exc:
            outcome["error"] = str(exc)
        finally:
            crashed.set()

    def big_second():
        # Strictly after the crash surfaced: this request lands on the
        # respawned shard set, never in the doomed batch.
        crashed.wait()
        res = registry.submit(_rhs(1), matrix="big").result()
        assert np.array_equal(res.x, _rhs(1) / _DIAG), (
            "the post-crash request must solve exactly on the "
            "respawned shards"
        )
        outcome["late_ok"] = True

    def small_client(idx: int):
        def work():
            for j in range(2):
                tag = 10 + idx * 2 + j
                res = registry.submit(_rhs(tag), matrix="small").result()
                assert np.array_equal(res.x, _rhs(tag) / (2.0 * _DIAG)), (
                    f"small request {tag} caught the big matrix's "
                    "shard crash"
                )

        return work

    tasks = [
        sched.task(big_first, name="big-first"),
        sched.task(big_second, name="big-second"),
        sched.task(small_client(0), name="small-0"),
        sched.task(small_client(1), name="small-1"),
    ]

    def closer():
        for h in tasks:
            h.join()
        registry.close()

    sched.task(closer, name="closer")
    sched.run()

    # The crash was attributed, contained, and survived.
    assert outcome["error"] is not None, (
        "the crash-batch request must fail, not hang or succeed"
    )
    assert f"shard 1 of {shards} failed mid-solve" in outcome["error"], (
        f"failure must name the guilty shard: {outcome['error']!r}"
    )
    assert outcome["late_ok"]
    assert not sched.daemon_failures, (
        "a shard crash must never kill the dispatcher"
    )

    big = registry.stats("big")
    small = registry.stats("small")
    assert big.shards == shards
    assert big.requests_failed == 1
    assert big.requests_served == 1
    # One open + one respawn, each spawning all N shards together.
    assert big.spawn_count == 2 * shards
    assert len(big.shard_updates) == shards
    assert min(big.shard_updates) > 0
    assert small.shards == 1
    assert small.shard_updates == []
    assert small.requests_failed == 0
    agg = registry.stats()
    assert agg.shards == {"shards": "mixed", "counts": {shards: 1, 1: 1}}
    return {
        "error": outcome["error"],
        "aggregate": agg,
        "pools_built": len(pools),
        "steps": sched.steps,
    }


def run_mixed_methods(
    seed: int,
    *,
    n_clients: int = 3,
    per_client: int = 3,
):
    """AsyRGS and AsyRK pools resident in one registry simultaneously.

    Two matrices share the gateway: ``rgs`` under the default method and
    ``rk`` registered with ``method="asyrk"``. Clients interleave
    requests to both under the seeded schedule. Methods must never
    share a batch: coalescing happens inside one matrix's own server,
    and the method travels to the factory per pool — so every fake pool
    records exactly one method, every pool's system identifies which
    matrix it serves (distinct diagonal scales make a cross-routed
    request an exact mismatch), and each method's pools carry exactly
    the requests addressed to its matrix.
    """
    sched = SimScheduler(seed)
    pools: list = []
    registry = MatrixRegistry(
        nproc=1,
        max_live_pools=2,
        capacity_k=4,
        max_wait=0.002,
        runtime=sched.runtime,
        solver_factory=fake_factory(
            sleep=sched.sleep, solve_time=0.01, made=pools
        ),
    )
    scales = {"rgs": 1.0, "rk": 4.0}
    registry.register("rgs", diagonal_system(scales["rgs"] * _DIAG))
    registry.register("rk", diagonal_system(scales["rk"] * _DIAG), method="asyrk")
    routed = {"rgs": 0, "rk": 0}

    def client(idx: int):
        def work():
            for j in range(per_client):
                tag = idx * per_client + j
                which = "rgs" if (idx + j) % 2 == 0 else "rk"
                routed[which] += 1
                h = registry.submit(_rhs(tag), matrix=which)
                res = h.result()
                expect = _rhs(tag) / (scales[which] * _DIAG)
                assert np.array_equal(res.x, expect), (
                    f"request {tag} for {which!r} was solved against the "
                    "wrong resident matrix (cross-method batch?)"
                )

        return work

    clients = [
        sched.task(client(i), name=f"client-{i}") for i in range(n_clients)
    ]

    def closer():
        for h in clients:
            h.join()
        registry.close()

    sched.task(closer, name="closer")
    sched.run()

    total = n_clients * per_client
    agg = registry.stats()
    assert agg.requests_submitted == total
    assert agg.requests_served == total
    assert agg.requests_failed == 0
    assert not sched.daemon_failures

    # Every pool carries exactly one method, and the method matches the
    # matrix the pool's system belongs to.
    by_method = {"asyrgs": 0, "asyrk": 0}
    for pool in pools:
        assert pool.method in by_method, f"unexpected method {pool.method!r}"
        expected_scale = scales["rgs" if pool.method == "asyrgs" else "rk"]
        assert np.array_equal(pool._diag, expected_scale * _DIAG), (
            f"a {pool.method} pool was built over the other matrix's system"
        )
        by_method[pool.method] += sum(pool.solved_widths)
    # Column conservation per method: every request's single column was
    # solved by a pool of its own method — a batch that coalesced
    # across methods would shift a column from one side to the other.
    assert by_method["asyrgs"] == routed["rgs"]
    assert by_method["asyrk"] == routed["rk"]
    assert by_method["asyrgs"] > 0 and by_method["asyrk"] > 0
    # The aggregate stats report the heterogeneity honestly.
    assert agg.method == {
        "method": "mixed",
        "methods": {"asyrgs": 1, "asyrk": 1},
    }
    assert registry.stats("rgs").method == "asyrgs"
    assert registry.stats("rk").method == "asyrk"
    return {"aggregate": agg, "pools_built": len(pools), "steps": sched.steps}


# ---------------------------------------------------------------------------
# Warm-start cache scenarios (see test_cache.py)
# ---------------------------------------------------------------------------


def run_cache_dedupe(seed: int, *, n_clients: int = 4):
    """Concurrent identical requests deduping through the cache.

    Every client races the *same* right-hand side plus one of its own.
    Whatever the interleaving — all duplicates coalesced into one batch
    before any store, or strung out so later ones hit the entry the
    first one wrote — the cache must end with exactly one entry per
    distinct fingerprint (storing an existing fingerprint replaces in
    place), its counters must conserve (every lookup is a hit or a
    miss, every served request a store, every hit a warm start), and
    every answer must stay exact."""
    sched = SimScheduler(seed)
    pools: list = []
    cache = SolutionCache(runtime=sched.runtime)
    server = SolverServer(
        diagonal_system(_DIAG),
        nproc=2,
        capacity_k=4,
        max_wait=0.002,
        runtime=sched.runtime,
        solver_factory=fake_factory(
            sleep=sched.sleep, solve_time=0.01, made=pools
        ),
        cache=cache,
    )

    def client(idx: int):
        def work():
            # The shared rhs everyone races, then one of this client's
            # own. Distinct tags are far apart in relative L2 (>= 0.2),
            # so the near-hit path can never alias them.
            h_dup = server.submit(_rhs(0))
            h_own = server.submit(_rhs(idx + 1))
            res = h_dup.result()
            assert np.array_equal(res.x, _rhs(0) / _DIAG)
            res = h_own.result()
            assert np.array_equal(res.x, _rhs(idx + 1) / _DIAG)

        return work

    clients = [
        sched.task(client(i), name=f"client-{i}") for i in range(n_clients)
    ]

    def closer():
        for h in clients:
            h.join()
        server.close()

    sched.task(closer, name="closer")
    sched.run()

    total = 2 * n_clients
    stats = server.stats()
    assert stats.requests_served == total
    assert stats.requests_failed == 0
    assert sum(pools[0].solved_widths) == total
    cs = cache.stats()
    # Dedupe: N racing duplicates collapse to one entry per distinct
    # fingerprint, never one per request.
    assert cs["entries"] == n_clients + 1
    assert len(cache) == n_clients + 1
    # Conservation: every lookup resolved, every served request stored,
    # every hit (and only a hit) warm-started a request.
    assert cs["stores"] == total
    assert cs["hits_exact"] + cs["hits_near"] + cs["misses"] == total
    assert cs["hits_near"] == 0
    # Each distinct rhs's chronologically-first lookup precedes any
    # store of it, so it must miss.
    assert cs["misses"] >= n_clients + 1
    assert cs["warm_requests"] == cs["hits_exact"]
    assert cs["warm_requests"] + cs["cold_requests"] == total
    assert cs["evictions"] == 0 and cs["invalidations"] == 0
    assert not sched.daemon_failures
    return {"cache": cs, "stats": stats, "steps": sched.steps}


def run_cache_eviction_race(seed: int, *, per_client: int = 3):
    """A cache hit racing the LRU eviction of its matrix's pool.

    One shared cache behind a registry whose pool cap is 1: a ``hot``
    client lands an entry (store-before-wakeup guarantees it exists
    when its ``result()`` returns) and goes idle; a ``cold`` client's
    first submit then deterministically evicts the idle hot pool —
    which invalidates hot's cache entries (the cap is soft and skips
    busy pools, so this is the one hand-sequenced step). From there the
    clients race freely: hot re-submits the same rhs, respawning its
    pool and possibly re-evicting cold's, so every later lookup races
    whatever invalidation the schedule produces. Whichever side each
    one lands on, answers stay exact and counters conserve."""
    sched = SimScheduler(seed)
    pools: list = []
    registry = MatrixRegistry(
        nproc=1,
        max_live_pools=1,
        capacity_k=4,
        max_wait=0.002,
        cache_solutions=True,
        runtime=sched.runtime,
        solver_factory=fake_factory(
            sleep=sched.sleep, solve_time=0.01, made=pools
        ),
    )
    registry.register("hot", diagonal_system(_DIAG))
    registry.register("cold", diagonal_system(2.0 * _DIAG))
    seeded = sched.runtime.event()
    evicted = sched.runtime.event()

    def hot_client():
        res = registry.submit(_rhs(0), matrix="hot").result()
        assert np.array_equal(res.x, _rhs(0) / _DIAG)
        seeded.set()  # the hot entry is stored: eviction now has prey
        evicted.wait()  # stay idle until the cold spawn has evicted us
        for _ in range(per_client):
            res = registry.submit(_rhs(0), matrix="hot").result()
            assert np.array_equal(res.x, _rhs(0) / _DIAG)

    def cold_client():
        seeded.wait()
        # This spawn finds the hot pool idle, evicts it, and
        # invalidates the seeded hot entry — then the race is on.
        handle = registry.submit(_rhs(10), matrix="cold")
        evicted.set()
        res = handle.result()
        assert np.array_equal(res.x, _rhs(10) / (2.0 * _DIAG))
        for j in range(1, per_client):
            res = registry.submit(_rhs(10 + j), matrix="cold").result()
            assert np.array_equal(res.x, _rhs(10 + j) / (2.0 * _DIAG))

    tasks = [
        sched.task(hot_client, name="hot-client"),
        sched.task(cold_client, name="cold-client"),
    ]

    def closer():
        for h in tasks:
            h.join()
        registry.close()

    sched.task(closer, name="closer")
    sched.run()

    total = 1 + 2 * per_client
    agg = registry.stats()
    assert agg.requests_served == total
    assert agg.requests_failed == 0
    cs = registry.cache_stats()
    assert cs["stores"] == total
    assert cs["hits_exact"] + cs["hits_near"] + cs["misses"] == total
    assert cs["warm_requests"] == cs["hits_exact"] + cs["hits_near"]
    assert cs["warm_requests"] + cs["cold_requests"] == total
    # The cold spawn evicted the idle hot pool while the seeded hot
    # entry provably existed, so it must have been invalidated.
    assert cs["invalidations"] >= 1
    # Entry conservation: entries leave only by LRU eviction,
    # invalidation, or in-place replacement (uncounted) — never appear
    # from nowhere.
    assert cs["entries"] + cs["evictions"] + cs["invalidations"] <= cs["stores"]
    # hot, cold, then hot respawned after its deterministic eviction —
    # the soft cap may thrash further, never less.
    assert len(pools) >= 3
    assert not sched.daemon_failures
    return {
        "cache": cs,
        "aggregate": agg,
        "pools_built": len(pools),
        "steps": sched.steps,
    }


def run_cache_crash(seed: int):
    """A warm-started batch dies mid-solve; the entry that seeded it
    must survive and must not poison the respawned pool.

    Three event-sequenced single-request batches over one rhs: the
    first solves cold and stores; the second hits the entry, warm-starts
    — and its solve call is scripted to crash (worker death, the
    contained ``Exception`` path); the third hits the same entry again
    on the respawned pool and must solve exactly. The crashed batch
    never reaches the store/record path, so the warm start that rode it
    is simply not accounted: ``warm_requests`` counts only the third
    request, while both the second and third were seeded (visible in
    the pool's ``received_x0`` log)."""
    sched = SimScheduler(seed)
    pools: list = []
    cache = SolutionCache(runtime=sched.runtime)
    server = SolverServer(
        diagonal_system(_DIAG),
        nproc=1,
        capacity_k=2,
        max_wait=0.0,
        runtime=sched.runtime,
        solver_factory=fake_factory(
            sleep=sched.sleep,
            solve_time=0.01,
            fail_on={2: Exception("injected worker crash")},
            made=pools,
        ),
        cache=cache,
    )
    stored = sched.runtime.event()
    crashed = sched.runtime.event()
    outcome = {"error": None}

    def first():
        res = server.submit(_rhs(0)).result()
        assert np.array_equal(res.x, _rhs(0) / _DIAG)
        stored.set()  # store precedes wakeup: the entry now exists

    def second():
        stored.wait()
        h = server.submit(_rhs(0))  # exact hit -> warm
        try:
            h.result()
        except ServeError as exc:
            outcome["error"] = str(exc)
        finally:
            crashed.set()

    def third():
        crashed.wait()
        res = server.submit(_rhs(0)).result()  # warm again, fresh pool
        assert np.array_equal(res.x, _rhs(0) / _DIAG)

    tasks = [
        sched.task(first, name="first-client"),
        sched.task(second, name="second-client"),
        sched.task(third, name="third-client"),
    ]

    def closer():
        for h in tasks:
            h.join()
        server.close()

    sched.task(closer, name="closer")
    sched.run()

    assert outcome["error"] is not None, (
        "the crashed warm batch must fail, not hang or succeed"
    )
    assert "injected worker crash" in outcome["error"]
    pool = pools[0]
    assert pool.solve_calls == 3
    # One open + one respawn after the worker crash.
    assert pool.spawn_count == 2
    # The cached solution really seeded batches two and three — and the
    # crash did not drop it in between.
    cached = _rhs(0) / _DIAG
    assert pool.received_x0[0] is None
    for x0 in pool.received_x0[1:]:
        assert x0 is not None
        assert np.array_equal(x0.reshape(-1), cached)
    stats = server.stats()
    assert stats.requests_submitted == 3
    assert stats.requests_served == 2
    assert stats.requests_failed == 1
    cs = cache.stats()
    assert cs["hits_exact"] == 2
    assert cs["misses"] == 1
    # The crashed batch never stores or records: only the first (cold)
    # and third (warm) requests are accounted.
    assert cs["stores"] == 2
    assert cs["warm_requests"] == 1
    assert cs["cold_requests"] == 1
    assert cs["entries"] == 1
    assert cs["invalidations"] == 0
    assert not sched.daemon_failures
    return {"cache": cs, "error": outcome["error"], "steps": sched.steps}


# ---------------------------------------------------------------------------
# Halo-ring scenarios (multi-node shard hosts; see test_halo_ring.py)
# ---------------------------------------------------------------------------


class _RingLink:
    """One scripted wire link of a shard-host peer ring.

    Stands in for the ``_JsonLineClient`` a :class:`WireHalo` pushes
    through: delivers ``halo_push`` payloads straight into the
    destination mirror's ``receive()``, with the link behaviors the
    multi-node scenarios need — failure windows (partition, flapping),
    delivery buffering (a slow peer lags ``delay`` pushes behind), and
    one scripted reordering (the push at ``reorder_at`` arrives *after*
    its successor, which the receiver must drop as stale)."""

    def __init__(self, target, *, fail_when=None, delay=0, reorder_at=None):
        self._target = target  # () -> destination WireHalo
        self._fail_when = fail_when if fail_when is not None else lambda g: False
        self._delay = int(delay)
        self._reorder_at = reorder_at
        self._held = None
        self._queue: list[dict] = []
        self.delivered = 0
        self.failed = 0

    def request(self, payload: dict) -> dict:
        assert payload["op"] == "halo_push"
        generation = int(payload["generation"])
        if self._fail_when(generation):
            self.failed += 1
            raise ConnectionError(f"link down at generation {generation}")
        if generation == self._reorder_at:
            self._held = payload  # overtaken by the next push
            return {"ok": True}
        self._queue.append(payload)
        if self._held is not None:
            self._queue.append(self._held)  # the late, stale arrival
            self._held = None
        while len(self._queue) > self._delay:
            self._deliver(self._queue.pop(0))
        return {"ok": True}

    def _deliver(self, payload: dict) -> None:
        self._target().receive(
            shard=payload["shard"],
            r0=payload["r0"],
            r1=payload["r1"],
            rows=payload["rows"],
            generation=payload["generation"],
        )
        self.delivered += 1

    def flush(self) -> None:
        """Drain the lag buffer — the slow peer finally catching up."""
        while self._queue:
            self._deliver(self._queue.pop(0))

    def close(self) -> None:
        pass


def _run_halo_ring(seed: int, *, epochs: int, link_opts):
    """Two WireHalo mirrors exchanging over scripted links under a
    seeded schedule.

    Each shard's task runs ``epochs`` local epochs: publish the owned
    block (every entry stamped with the epoch number), then pull the
    foreign half and assert the two properties that must hold under
    every schedule and every link pathology:

    * **stale, never torn** — each pulled foreign row's value equals its
      generation stamp exactly (a row can lag, but can never mix two
      epochs of its owner);
    * **monotone** — observed foreign generations never rewind, even
      when the link delivers out of order (the receiver drops the
      stale push instead).

    ``link_opts[(src, dst)]`` are :class:`_RingLink` kwargs per
    direction. Returns both mirrors' counters plus the links.
    """
    from repro.execution import WireHalo

    sched = SimScheduler(seed)
    bounds = [(0, N // 2), (N // 2, N)]
    addrs = ["sim-host-0:1", "sim-host-1:1"]
    halos: dict[int, WireHalo] = {}
    links: dict[tuple[int, int], _RingLink] = {}

    def factory_for(src: int):
        def factory(addr: str):
            dst = addrs.index(addr)
            link = _RingLink(
                lambda: halos[dst], **link_opts.get((src, dst), {})
            )
            links[(src, dst)] = link
            return link

        return factory

    x0 = np.zeros((N, 1))
    for s in range(2):
        halos[s] = WireHalo(
            x0, bounds, shard=s, peers=[addrs[1 - s]], matrix="sim",
            client_factory=factory_for(s),
        )

    def shard_task(s: int):
        r0, r1 = bounds[s]
        foreign = np.arange(*bounds[1 - s], dtype=np.int64)

        def work():
            last_ages = np.zeros(foreign.size, dtype=np.int64)
            for epoch in range(1, epochs + 1):
                sched.sleep(0.001)  # a yield point: schedules interleave
                halo = halos[s]
                halo.publish(
                    s, np.full((r1 - r0, 1), float(epoch)), epoch
                )
                values, ages = halo.pull(foreign)
                assert np.all(values[:, 0] == ages), (
                    f"shard {s} pulled a torn halo row at epoch {epoch}: "
                    "a value must always match its generation stamp"
                )
                assert np.all(ages >= last_ages), (
                    f"shard {s} observed a foreign generation rewind at "
                    f"epoch {epoch}"
                )
                last_ages = ages

        return work

    tasks = [
        sched.task(shard_task(s), name=f"shard-{s}") for s in range(2)
    ]

    def closer():
        for h in tasks:
            h.join()

    sched.task(closer, name="closer")
    sched.run()
    assert not sched.daemon_failures
    counters = {s: halos[s].counters() for s in range(2)}
    # Every epoch completed on both sides whatever the links did: a
    # dead/slow/partitioned peer costs staleness, never local progress.
    for s in range(2):
        assert counters[s]["generation"] == epochs
    return {
        "counters": counters,
        "links": links,
        "halos": halos,
        "addrs": addrs,
        "steps": sched.steps,
    }


def run_halo_partition(
    seed: int, *, epochs: int = 12, window: tuple[int, int] = (4, 9)
):
    """A one-way partition mid-epoch: pushes 0→1 fail for generations
    in ``window`` and the ring heals afterwards. Shard 0 must complete
    every epoch regardless (best-effort pushes), count each failed push
    and exactly one reconnect, and the receiver's view of shard 0 must
    heal to the final generation — the partition cost staleness only."""
    lo, hi = window
    out = _run_halo_ring(
        seed,
        epochs=epochs,
        link_opts={(0, 1): {"fail_when": lambda g: lo <= g < hi}},
    )
    addr1 = out["addrs"][1]
    dropped = hi - lo
    c0 = out["counters"][0]
    assert c0["push_failures"][addr1] == dropped
    assert c0["pushes"][addr1] == epochs - dropped
    assert c0["reconnects"][addr1] == 1
    c1 = out["counters"][1]
    assert c1["received"] == epochs - dropped
    assert c1["stale_drops"] == 0
    # The ring healed: shard 1's mirror holds shard 0's final epoch.
    _, ages = out["halos"][1].pull(np.arange(N // 2, dtype=np.int64))
    assert np.all(ages == epochs)
    # The reverse link never failed.
    assert out["counters"][1]["push_failures"][out["addrs"][0]] == 0
    return out


def run_halo_slow_peer(
    seed: int, *, epochs: int = 10, lag: int = 3
):
    """A slow peer serving stale halos: deliveries 1→0 run ``lag``
    pushes behind, and one push 0→1 is overtaken by its successor.
    Shard 0 keeps pulling exact-but-stale rows (the in-task stale-
    never-torn and monotonicity asserts), the receiver drops the one
    reordered push instead of rewinding, and an end-of-run flush heals
    the lag completely."""
    out = _run_halo_ring(
        seed,
        epochs=epochs,
        link_opts={
            (1, 0): {"delay": lag},
            (0, 1): {"reorder_at": epochs // 2},
        },
    )
    addr0, addr1 = out["addrs"]
    c0, c1 = out["counters"][0], out["counters"][1]
    # The slow link buffered exactly `lag` undelivered pushes; every
    # send still counted as a success for the (non-blocking) sender.
    assert c1["pushes"][addr0] == epochs
    assert c0["received"] == epochs - lag
    assert c0["stale_drops"] == 0  # delayed in order: stale, never dropped
    # The reordered push 0→1 arrived after its successor: the receiver
    # dropped it (one stale drop) instead of rewinding the generation.
    assert c1["stale_drops"] == 1
    assert c1["received"] == epochs - 1
    slow_link = out["links"][(1, 0)]
    assert slow_link.delivered + len(slow_link._queue) == epochs
    slow_link.flush()
    _, ages = out["halos"][0].pull(
        np.arange(N // 2, N, dtype=np.int64)
    )
    assert np.all(ages == epochs), "the flush must heal the lag"
    return out


def run_halo_reconnect(
    seed: int,
    *,
    epochs: int = 15,
    outages: tuple = ((3, 5), (8, 11)),
):
    """A flapping peer: the 0→1 link dies and recovers twice. Each
    recovery must count exactly one reconnect, every failed push is
    accounted, and the final state is fully healed — the receiver's
    view of shard 0 reaches the last generation."""
    def down(g: int) -> bool:
        return any(lo <= g < hi for lo, hi in outages)

    out = _run_halo_ring(
        seed, epochs=epochs, link_opts={(0, 1): {"fail_when": down}}
    )
    addr1 = out["addrs"][1]
    dropped = sum(hi - lo for lo, hi in outages)
    c0 = out["counters"][0]
    assert c0["push_failures"][addr1] == dropped
    assert c0["pushes"][addr1] == epochs - dropped
    assert c0["reconnects"][addr1] == len(outages)
    c1 = out["counters"][1]
    assert c1["received"] == epochs - dropped
    _, ages = out["halos"][1].pull(np.arange(N // 2, dtype=np.int64))
    assert np.all(ages == epochs)
    return out
