"""Pre-fix replicas of the four concurrency bugs this PR fixed.

The agentbus simtest discipline: a deterministic harness is only
trusted once it is shown to *detect* known bugs. Each class/function
here reproduces the exact pre-fix code of one of the fixed defects
(verbatim where practical), so the suites can run the same scenario
against the buggy and the fixed implementation and demonstrate that
the buggy one fails on a recorded seed while the fixed one survives
the whole seed range.

These are test fixtures, not supported code — the copied bodies are
intentionally frozen at their pre-fix state.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ServeError
from repro.serve import AdaptiveWait, FixedWait, SolverServer
from repro.serve.server import RequestHandle, ServerStats, _BatchKey, _Pending
from repro.validation import check_rhs, check_x0

__all__ = [
    "RacyDepthServer",
    "WedgingServer",
    "buggy_make_policy",
    "buggy_merge_stats",
]


class WedgingServer(SolverServer):
    """Pre-fix dispatcher exit: drain what is queued, but never mark the
    server broken or closed. A dispatcher killed by a ``BaseException``
    leaves ``_closed`` False, so later ``submit()`` calls enqueue onto
    a queue nothing will ever pop and ``result()`` hangs forever."""

    def _shutdown_dispatch(self, cause):
        self._drain()


class RacyDepthServer(SolverServer):
    """Pre-fix ``submit()``: the queue-depth high-water mark reads the
    dispatcher-private ``_stash`` attribute directly from the client
    thread — a data race. The schedule where the dispatcher pops a
    request the client already counted in ``qsize()`` and stashes it
    before the client reads ``_stash`` double-counts that request."""

    def submit(
        self,
        b,
        *,
        tol=None,
        max_sweeps=None,
        sync_every_sweeps=None,
        x0=None,
        request_id=None,
        matrix=None,
    ) -> RequestHandle:
        if matrix is not None:
            raise ServeError(
                f"unknown matrix {matrix!r}: this server hosts a single "
                "resident matrix"
            )
        b = np.array(check_rhs(b, self.n, capacity=self.capacity_k))
        if x0 is not None:
            x0 = np.array(check_x0(x0, b.shape))
        key = _BatchKey(
            tol=self.default_tol if tol is None else float(tol),
            max_sweeps=(
                self.default_max_sweeps
                if max_sweeps is None
                else int(max_sweeps)
            ),
            sync_every_sweeps=(
                self.default_sync_every
                if sync_every_sweeps is None
                else int(sync_every_sweeps)
            ),
        )
        with self._lock:
            if self._broken is not None:
                raise ServeError(self._broken)
            if self._closed:
                raise ServeError("server is closed; no new requests accepted")
            if request_id is None:
                request_id = next(self._ids)
            # (trace_id post-dates this bug; None keeps the replica
            # constructible against the current _Pending signature.)
            pending = _Pending(
                request_id, b, x0, key, self._runtime.event(), self._clock(),
                None,
            )
            self._submitted += 1
            # THE BUG: `_stash` belongs to the dispatcher thread; reading
            # it here is unsynchronized with the stash transitions.
            depth = (
                self._queue.qsize()
                + 1
                + (1 if self._stash is not None else 0)
            )
            self._max_depth = max(self._max_depth, depth)
            self._queue.put(pending)
        return RequestHandle(pending)


def buggy_make_policy(policy, max_wait, runtime=None):
    """Pre-fix ``make_policy``: the adaptive cap is unconditionally
    ``max(0.05, max_wait)``, so an explicit ``max_wait=0`` ("0 disables
    lingering") still lingers up to 50 ms once measurements land."""
    if isinstance(policy, FixedWait) or isinstance(policy, AdaptiveWait):
        return policy
    max_wait = float(max_wait)
    if policy == "fixed":
        return FixedWait(max_wait)
    if policy == "adaptive":
        return AdaptiveWait(
            initial_wait=max_wait,
            max_wait=max(0.05, max_wait),  # THE BUG
            runtime=runtime,
        )
    raise ServeError(f"unknown batching policy {policy!r}")


def buggy_merge_stats(snapshots) -> ServerStats:
    """Pre-fix ``merge_stats``: the aggregate's ``policy`` field is
    ``snapshots[-1].policy`` — whichever pool's snapshot happened to
    come last, even when the pools run different policies."""
    snapshots = list(snapshots)
    served = sum(s.requests_served for s in snapshots)
    latency_sum = sum(s.latency_mean * s.requests_served for s in snapshots)
    return ServerStats(
        requests_submitted=sum(s.requests_submitted for s in snapshots),
        requests_served=served,
        requests_failed=sum(s.requests_failed for s in snapshots),
        batches=sum(s.batches for s in snapshots),
        batched_singles=sum(s.batched_singles for s in snapshots),
        max_batch_size=max((s.max_batch_size for s in snapshots), default=0),
        max_queue_depth=max((s.max_queue_depth for s in snapshots), default=0),
        latency_mean=latency_sum / served if served else 0.0,
        latency_max=max((s.latency_max for s in snapshots), default=0.0),
        spawn_count=sum(s.spawn_count for s in snapshots),
        worker_pids=[pid for s in snapshots for pid in s.worker_pids],
        policy=snapshots[-1].policy if snapshots else {},  # THE BUG
    )
