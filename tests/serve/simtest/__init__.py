"""Deterministic simulation tests for the serving stack (see README.md)."""
