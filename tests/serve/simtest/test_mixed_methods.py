"""Mixed-method serving: AsyRGS and AsyRK pools behind one gateway.

The registry routes by matrix id and the update method is a per-matrix
property, so two methods being resident simultaneously must never share
a batch: coalescing happens inside one matrix's own ``SolverServer``,
and the ``method`` kwarg travels to the pool factory per pool. The
driver (``run_mixed_methods``) asserts the whole chain under seeded
schedules — exact per-request results, per-method column conservation,
one method per fake pool, and the honest ``mixed`` breakdown in the
aggregate stats. Failing seeds replay with ``--sim-seed=N``.
"""

from __future__ import annotations

import pytest

from .drivers import explore, run_mixed_methods

pytestmark = pytest.mark.simtest


def test_mixed_methods_exploration(sim_seeds):
    def check(out):
        # Both methods really spawned a pool under every schedule.
        assert out["pools_built"] >= 2

    explore(run_mixed_methods, sim_seeds(9_000, 150), check=check)


def test_mixed_methods_regression_seed():
    """A pinned schedule kept green forever: one full mixed-method run
    with both pools resident, exact routing, and the mixed stats
    breakdown (recorded when the scenario was introduced)."""
    out = run_mixed_methods(9_003)
    assert out["pools_built"] == 2
    assert out["aggregate"].requests_served == 9
