"""Shard death behind the gateway: attribution, containment, survival.

A matrix registered with ``shards=N`` is backed by N pools that live
and die together, so a shard crashing mid-solve has a precise required
blast radius: the requests in that matrix's in-flight batch fail with
a :class:`~repro.exceptions.ServeError` naming the guilty shard id
(the coordinator's ``shard S of N failed mid-solve`` shape), every
other matrix keeps serving exact answers, the next batch respawns all
N shards together, and the dispatcher never dies or wedges. The driver
(``run_shard_crash``) asserts the whole chain under seeded schedules,
plus the honest stats: per-matrix shard counts, per-shard update
lists, and the aggregate's ``{"shards": "mixed"}`` breakdown. Failing
seeds replay with ``--sim-seed=N``.
"""

from __future__ import annotations

import pytest

from .drivers import explore, run_shard_crash

pytestmark = [pytest.mark.simtest, pytest.mark.shard]


def test_shard_crash_exploration(sim_seeds):
    def check(out):
        assert "shard 1 of 3 failed mid-solve" in out["error"]
        # Both matrices really built pools under every schedule.
        assert out["pools_built"] == 2

    explore(run_shard_crash, sim_seeds(80_000, 150), check=check)


def test_shard_crash_regression_seed():
    """A pinned schedule kept green forever: shard death attributed to
    the guilty shard, contained to one matrix, survived by the
    dispatcher, respawn accounted in steps of N (recorded when the
    scenario was introduced)."""
    out = run_shard_crash(80_007)
    assert "shard 1 of 3 failed mid-solve" in out["error"]
    assert out["aggregate"].requests_served == 5
    assert out["aggregate"].requests_failed == 1
    assert out["aggregate"].shards == {
        "shards": "mixed",
        "counts": {3: 1, 1: 1},
    }
