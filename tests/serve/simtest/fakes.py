"""In-process stand-ins for the multiprocess solver pool.

The simulation harness tests the *serving* logic — dispatch, gather,
stash, eviction, policy feedback — not the numerical engine, so the
pool behind the server is replaced by :class:`FakePool`: an in-process
object with the exact :class:`~repro.execution.ProcessAsyRGS` surface
the server touches (``open``/``close``/``solve``/``spawn_count``/
``worker_pids``) whose "solves" are exact, instantaneous algebra on a
**diagonal** system.

Diagonal systems make every routing bug visible: for ``A = diag(d)``
the solution of ``A x = b`` is exactly ``b / d``, computed without
iteration or rounding ambiguity, so a request that receives another
request's column, a batch sliced off by one, or a request solved
against the wrong resident matrix produces an exact mismatch under
*any* interleaving — the assertion never needs a tolerance.

Solve duration is **virtual**: ``solve_time`` seconds are consumed on
the simulation clock (via the scheduler's ``sleep``), so batches have
real extent in simulated time — queues build behind slow solves, linger
deadlines fire mid-solve — at zero wall-clock cost.

``fail_on`` scripts failures: ``{call_index: exception}`` raises that
exception from the N-th ``solve`` call (1-based), which is how the
drivers inject worker crashes (``Exception``) and dispatcher-killing
``BaseException`` (e.g. ``KeyboardInterrupt``) at a deterministic
point in the schedule.

Sharded matrices fake the same way: ``shards=N`` (the kwarg the server
forwards from a ``shards=N`` registration) makes the fake account like
the real :class:`~repro.execution.ShardedSolver` — ``spawn_count``
moves in steps of N because a sharded matrix's pools spawn and respawn
together, and ``shard_update_counts()`` reports a per-shard load list
(absent-equivalent ``[]`` at ``shards=1``, exactly like the plain pool
which has no such attribute). ``fail_shard_on`` scripts a *shard*
death: ``{call_index: shard_id}`` raises the coordinator's own failure
shape — :class:`~repro.exceptions.ModelError` naming the guilty shard
— from the N-th solve call, so drivers can assert the gateway
attributes the crash without spawning a single OS process.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ModelError
from repro.sparse import CSRMatrix

__all__ = ["FakePool", "FakeRunResult", "diagonal_system", "fake_factory"]


class FakeRunResult:
    """The slice of ``ProcessRunResult`` the server reads back."""

    __slots__ = (
        "x",
        "converged",
        "sweeps_done",
        "converged_columns",
        "column_sweeps",
        "column_residuals",
    )

    def __init__(self, x: np.ndarray):
        k = x.shape[1]
        self.x = x
        self.converged = True
        self.sweeps_done = 7
        self.converged_columns = np.ones(k, dtype=bool)
        self.column_sweeps = np.full(k, 3, dtype=np.int64)
        self.column_residuals = np.zeros(k, dtype=np.float64)


def diagonal_system(diag) -> CSRMatrix:
    """``diag(d)`` as a CSR matrix: the exactly-solvable test system."""
    d = np.asarray(diag, dtype=np.float64)
    n = d.shape[0]
    return CSRMatrix(
        (n, n),
        np.arange(n + 1, dtype=np.int64),
        np.arange(n, dtype=np.int64),
        d.copy(),
    )


class FakePool:
    """In-process pool with the ``ProcessAsyRGS`` surface and exact
    diagonal-solve semantics (see module docstring).

    Accepts the full keyword surface :class:`~repro.serve.SolverServer`
    passes its ``solver_factory`` and ignores what a fake has no use
    for (beta, atomic, directions, start method, barrier timeout).
    """

    def __init__(
        self,
        A: CSRMatrix,
        x_block: np.ndarray,
        *,
        nproc: int,
        capacity_k: int,
        method: str = "asyrgs",
        shards: int = 1,
        sleep=None,
        solve_time: float = 0.0,
        fail_on: dict | None = None,
        fail_shard_on: dict | None = None,
        **_ignored,
    ):
        n = A.shape[0]
        if A.shape != (n, n) or not np.array_equal(
            A.indptr, np.arange(n + 1)
        ):
            raise ValueError("FakePool requires a diagonal system")
        self._diag = A.data.copy()
        self.capacity_k = int(capacity_k)
        self.nproc = int(nproc)
        # The server passes its update method explicitly on every
        # factory call; recording it lets mixed-method drivers assert
        # which pool each batch landed on.
        self.method = str(method)
        # The server forwards its shard count to the factory; a fake
        # "sharded" pool stays one in-process object but accounts like
        # the real coordinator (see module docstring).
        self.shards = int(shards)
        if self.shards < 1:
            raise ValueError(f"shards must be at least 1, got {shards}")
        self._sleep = sleep if sleep is not None else (lambda _s: None)
        self.solve_time = float(solve_time)
        self.fail_on = dict(fail_on or {})
        self.fail_shard_on = dict(fail_shard_on or {})
        self.spawn_count = 0
        self.solve_calls = 0
        self.solved_widths: list[int] = []
        # One entry per solve call: None, or a copy of the x0 block the
        # server passed — how cache drivers assert a batch really was
        # (or was not) warm-started, and with which seed.
        self.received_x0: list = []
        self._open = False
        self._respawn_pending = False

    # -- ProcessAsyRGS surface ------------------------------------------

    def open(self) -> None:
        self._open = True
        # A sharded matrix's pools spawn together: one open costs N
        # pool spawns, exactly the real ShardedSolver's accounting.
        self.spawn_count += self.shards

    def close(self) -> None:
        self._open = False

    def worker_pids(self) -> list[int]:
        return list(range(self.nproc * self.shards))

    def shard_update_counts(self) -> list[int]:
        """Per-shard load, the real coordinator's shape: every shard
        participates in every solve (each owns a row block of each
        column), so each slot carries the pool's total solved columns.
        Empty at ``shards=1`` — the delegated single pool has no such
        attribute, and the server maps that to ``[]``."""
        if self.shards == 1:
            return []
        return [sum(self.solved_widths)] * self.shards

    def solve(
        self,
        tol: float,
        max_sweeps: int,
        x0: np.ndarray | None = None,
        *,
        sync_every_sweeps: int,
        b: np.ndarray | None = None,
        **_ignored,
    ) -> FakeRunResult:
        if not self._open:
            raise RuntimeError("solve on a closed FakePool")
        if b is None or b.ndim != 2:
            raise ValueError("the server always passes a 2-D RHS block")
        if b.shape[1] > self.capacity_k:
            raise ValueError(
                f"RHS width {b.shape[1]} exceeds capacity {self.capacity_k}"
            )
        if self._respawn_pending:
            # The real backend drops a crashed pool and respawns it on
            # the next batch; spawn_count records that honestly — and a
            # sharded matrix respawns all N shards together, so the
            # step is N, never 1.
            self.spawn_count += self.shards
            self._respawn_pending = False
        self.solve_calls += 1
        self.solved_widths.append(b.shape[1])
        self.received_x0.append(None if x0 is None else np.array(x0))
        if self.solve_time:
            self._sleep(self.solve_time)
        guilty = self.fail_shard_on.get(self.solve_calls)
        if guilty is not None:
            # The coordinator's exact failure shape: the lowest failed
            # shard named, the whole solve torn down.
            self._respawn_pending = True
            raise ModelError(
                f"shard {int(guilty)} of {self.shards} failed mid-solve: "
                "injected shard fault (simtest)"
            )
        exc = self.fail_on.get(self.solve_calls)
        if exc is not None:
            if isinstance(exc, Exception):
                self._respawn_pending = True
            raise exc
        return FakeRunResult(b / self._diag[:, None])


def fake_factory(
    *,
    sleep=None,
    solve_time: float = 0.0,
    fail_on=None,
    fail_shard_on=None,
    made=None,
):
    """A ``solver_factory`` for :class:`~repro.serve.SolverServer`:
    binds the fake's configuration, forwards the server's construction
    call, and (when ``made`` is a list) records each pool it builds so
    drivers can assert on call counts afterwards."""

    def build(A, x_block, **kwargs):
        pool = FakePool(
            A,
            x_block,
            sleep=sleep,
            solve_time=solve_time,
            fail_on=fail_on,
            fail_shard_on=fail_shard_on,
            **kwargs,
        )
        if made is not None:
            made.append(pool)
        return pool

    return build
