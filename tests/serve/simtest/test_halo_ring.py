"""Multi-node halo exchange under seeded schedules: staleness, never
progress loss.

A ``repro serve --shard-of`` ring exchanges iterate rows over
best-effort ``halo_push`` links, and the source paper's
inconsistent-read analysis is exactly what makes its pathologies
legal: a partitioned, slow, or flapping peer may serve *stale* halos,
but must never block an epoch, tear a row across its owner's epochs,
or rewind an observed generation. The drivers (``run_halo_partition``,
``run_halo_slow_peer``, ``run_halo_reconnect``) run two real
:class:`~repro.execution.WireHalo` mirrors over scripted links and
assert those properties at every pull under every schedule, plus exact
push/failure/reconnect/stale-drop accounting — the counters the hosts'
``/v1/metrics`` scrape reports. Failing seeds replay with
``--sim-seed=N``.
"""

from __future__ import annotations

import pytest

from .drivers import (
    explore,
    run_halo_partition,
    run_halo_reconnect,
    run_halo_slow_peer,
)

pytestmark = [pytest.mark.simtest, pytest.mark.shard]


def test_partition_mid_epoch_exploration(sim_seeds):
    def check(out):
        # Both shards finished every epoch despite the dead window.
        assert all(
            c["generation"] == 12 for c in out["counters"].values()
        )

    explore(run_halo_partition, sim_seeds(120_000, 150), check=check)


def test_slow_peer_exploration(sim_seeds):
    def check(out):
        # The slow link really lagged: its buffer held pushes at the
        # end, yet the sender counted every push as success.
        assert len(out["links"][(1, 0)]._queue) == 0  # flushed by driver

    explore(run_halo_slow_peer, sim_seeds(130_000, 150), check=check)


def test_reconnect_exploration(sim_seeds):
    def check(out):
        addr1 = out["addrs"][1]
        assert out["counters"][0]["reconnects"][addr1] == 2

    explore(run_halo_reconnect, sim_seeds(140_000, 100), check=check)


def test_partition_regression_seed():
    """A pinned schedule kept green forever: one-way partition over
    generations [4, 9) of 12 — five failed pushes, one reconnect, the
    receiver healed to generation 12 (recorded when the scenario was
    introduced)."""
    out = run_halo_partition(120_000)
    addr1 = out["addrs"][1]
    assert out["counters"][0]["push_failures"][addr1] == 5
    assert out["counters"][0]["pushes"][addr1] == 7
    assert out["counters"][0]["reconnects"][addr1] == 1
    assert out["counters"][1]["received"] == 7


def test_reorder_is_dropped_not_rewound():
    """The slow-peer scenario's reordered push: the overtaken push
    0→1 must surface as exactly one stale drop on the receiver, never
    as a generation rewind (the in-task monotonicity assert)."""
    out = run_halo_slow_peer(130_001)
    # All ten pushes 0→1 were delivered (the reordered pair rode one
    # request), but only nine applied: the overtaken one was dropped.
    assert out["links"][(0, 1)].delivered == 10
    assert out["counters"][1]["received"] == 9
    assert out["halos"][1].stale_drops == 1
