"""Unit tests for the simulation scheduler itself.

The harness is only worth trusting if its own guarantees hold: schedules
are pure functions of the seed, blocked-task detection is exact, timed
waits elapse on the virtual clock (never the wall clock), and the
primitives preserve the threading semantics the server relies on.
"""

from __future__ import annotations

import queue
import time

import pytest

from .scheduler import SimDeadlock, SimScheduler, SimStall

pytestmark = pytest.mark.simtest


def _pingpong(seed: int, rounds: int = 20) -> tuple[list[str], float]:
    """Two tasks bouncing items through queues; returns (trace, clock)."""
    sched = SimScheduler(seed, record_trace=True)
    rt = sched.runtime
    a_to_b, b_to_a = rt.queue(), rt.queue()

    def ping():
        for i in range(rounds):
            a_to_b.put(i)
            assert b_to_a.get() == i * 2

    def pong():
        for _ in range(rounds):
            b_to_a.put(a_to_b.get() * 2)

    sched.task(ping, name="ping")
    sched.task(pong, name="pong")
    sched.run()
    return list(sched.trace), sched.now


def test_same_seed_same_schedule():
    trace1, clock1 = _pingpong(7)
    trace2, clock2 = _pingpong(7)
    assert trace1 == trace2
    assert clock1 == clock2


def test_different_seeds_differ():
    # Counter-based streams make collisions astronomically unlikely; a
    # run takes dozens of scheduling decisions, so at least one of a
    # handful of seeds must produce a different interleaving.
    baseline, _ = _pingpong(0)
    assert any(_pingpong(s)[0] != baseline for s in range(1, 6))


def test_deadlock_detected_and_names_seed():
    sched = SimScheduler(21)
    rt = sched.runtime
    e1, e2 = rt.event(), rt.event()

    def left():
        e1.wait()
        e2.set()

    def right():
        e2.wait()
        e1.set()

    sched.task(left, name="left")
    sched.task(right, name="right")
    with pytest.raises(SimDeadlock) as excinfo:
        sched.run()
    msg = str(excinfo.value)
    assert "left" in msg and "right" in msg
    assert "--sim-seed=21" in msg


def test_queue_timeout_elapses_on_virtual_clock():
    sched = SimScheduler(3)
    q = sched.runtime.queue()
    seen = {}

    def waiter():
        before = sched.now
        with pytest.raises(queue.Empty):
            q.get(timeout=123.0)
        seen["elapsed"] = sched.now - before

    sched.task(waiter, name="waiter")
    wall = time.monotonic()
    sched.run()
    wall = time.monotonic() - wall
    assert seen["elapsed"] >= 123.0
    assert wall < 5.0  # 123 simulated seconds, zero wall-clock sleeping


def test_sleepers_wake_in_deadline_order():
    sched = SimScheduler(9)
    order = []

    def sleeper(name, duration):
        def run():
            sched.sleep(duration)
            order.append(name)

        return run

    sched.task(sleeper("slow", 30.0), name="slow")
    sched.task(sleeper("fast", 1.0), name="fast")
    sched.task(sleeper("mid", 10.0), name="mid")
    sched.run()
    assert order == ["fast", "mid", "slow"]


def test_event_wait_timeout_returns_flag():
    sched = SimScheduler(4)
    ev = sched.runtime.event()
    out = {}

    def waiter():
        out["first"] = ev.wait(timeout=0.5)
        out["second"] = ev.wait(timeout=1e9)

    def setter():
        sched.sleep(2.0)
        ev.set()

    sched.task(waiter, name="waiter")
    sched.task(setter, name="setter")
    sched.run()
    assert out["first"] is False
    assert out["second"] is True


def test_lock_is_mutually_exclusive():
    sched = SimScheduler(11)
    lock = sched.runtime.lock()
    state = {"inside": 0, "max_inside": 0, "count": 0}

    def worker():
        for _ in range(10):
            with lock:
                state["inside"] += 1
                state["max_inside"] = max(
                    state["max_inside"], state["inside"]
                )
                sched.runtime.monotonic()  # a yield point inside the CS
                state["count"] += 1
                state["inside"] -= 1

    for i in range(3):
        sched.task(worker, name=f"worker-{i}")
    sched.run()
    assert state["count"] == 30
    assert state["max_inside"] == 1


def test_rlock_is_reentrant():
    sched = SimScheduler(13)
    rlock = sched.runtime.rlock()
    out = {}

    def worker():
        with rlock:
            with rlock:
                out["nested"] = True

    sched.task(worker, name="worker")
    sched.run()
    assert out["nested"] is True


def test_daemon_blocked_at_exit_is_not_a_deadlock():
    sched = SimScheduler(5)
    q = sched.runtime.queue()

    def dispatcher():
        q.get()  # blocks forever, like an idle server dispatcher

    sched.runtime.spawn(dispatcher, name="dispatcher")
    sched.task(lambda: None, name="client")
    sched.run()  # completes: only daemon work remains


def test_daemon_failure_recorded_not_raised():
    sched = SimScheduler(6)

    def dying():
        raise KeyboardInterrupt("daemon death")

    sched.runtime.spawn(dying, name="dying")

    def client():
        sched.sleep(1.0)

    sched.task(client, name="client")
    sched.run()
    assert len(sched.daemon_failures) == 1
    assert isinstance(sched.daemon_failures[0], KeyboardInterrupt)


def test_foreground_failure_propagates():
    sched = SimScheduler(8)

    def failing():
        sched.sleep(0.1)
        raise AssertionError("scenario invariant violated")

    sched.task(failing, name="failing")
    with pytest.raises(AssertionError, match="scenario invariant"):
        sched.run()


def test_runaway_loop_raises_simstall():
    sched = SimScheduler(2, max_steps=500)

    def spinner():
        while True:
            sched.runtime.monotonic()

    sched.task(spinner, name="spinner")
    with pytest.raises(SimStall, match="seed 2"):
        sched.run()


def test_clock_is_monotonic_and_jittered():
    sched = SimScheduler(14)
    readings = []

    def reader():
        for _ in range(50):
            readings.append(sched.runtime.monotonic())

    sched.task(reader, name="reader")
    sched.run()
    assert readings == sorted(readings)
    assert readings[-1] > readings[0]  # time actually advances
