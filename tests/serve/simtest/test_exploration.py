"""Schedule exploration: the serving stack under ~1000 seeded schedules.

Each sweep runs one scenario across a contiguous seed range (disjoint
bases per scenario keep seeds unambiguous); the per-run invariants live
in the drivers. A failure aborts with the seed and the exact replay
command (``--sim-seed=N``). CI runs this file in the simtest slice
under a shell-level hard timeout; ``--sim-count`` scales every sweep.

Default seed counts total just over 1000 schedules and complete in
seconds: every wait in a scenario is virtual, so a suite this size
costs scheduling overhead only, never wall-clock sleeping.
"""

from __future__ import annotations

import pytest

from .drivers import (
    explore,
    run_adaptive_linger,
    run_dispatcher_death,
    run_registry_policies,
    run_registry_traffic,
    run_server_traffic,
    run_stash_depth,
)

pytestmark = pytest.mark.simtest


def test_server_traffic_fixed_policy(sim_seeds):
    explore(run_server_traffic, sim_seeds(10_000, 300))


def test_server_traffic_adaptive_policy(sim_seeds):
    explore(
        run_server_traffic,
        sim_seeds(20_000, 150),
        policy="adaptive",
        max_wait=0.01,
    )


def test_registry_traffic_with_eviction(sim_seeds):
    def check(out):
        # The pool cap is below the matrix count, so schedules routing
        # across all matrices must have respawned at least once.
        assert out["pools_built"] >= 3

    explore(run_registry_traffic, sim_seeds(30_000, 150), check=check)


def test_stash_depth_stays_bounded(sim_seeds):
    # Three requests, at most two ever waiting: the high-water mark may
    # never exceed 2 under any schedule (the pre-fix unsynchronized
    # `_stash` read reported 3 — see test_regressions).
    def check(depth):
        assert depth <= 2, f"queue-depth high-water mark over-counted: {depth}"

    explore(run_stash_depth, sim_seeds(40_000, 200), check=check)


def test_dispatcher_death_fails_fast(sim_seeds):
    # Whatever the schedule, a dispatcher killed by a BaseException must
    # surface as a fast ServeError naming the cause — at submit() or at
    # result() — never as a hang (a hang would raise SimDeadlock here).
    def check(outcome):
        err = outcome["submit_error"] or outcome["late_error"]
        assert err is not None and "KeyboardInterrupt" in err

    explore(run_dispatcher_death, sim_seeds(50_000, 100), check=check)


def test_adaptive_zero_max_wait_never_lingers(sim_seeds):
    # max_wait=0 disables lingering: under every schedule the lone
    # trailing request's queue wait is scheduling noise, not a window.
    def check(out):
        queue_wait, snapshot = out
        assert queue_wait < 0.02
        # Guard against vacuity: the EWMAs must actually have crossed
        # the depth gate, or the policy never had a window to withhold.
        assert snapshot["ewma_queue_depth"] >= 0.5

    explore(run_adaptive_linger, sim_seeds(60_000, 60), check=check)


def test_registry_aggregate_policy_breakdown(sim_seeds):
    def check(payload):
        assert payload["aggregate"]["policy"] == {
            "policy": "mixed",
            "pools": 2,
            "policies": {"fixed": 1, "adaptive": 1},
        }
        assert payload["matrices"]["fx"]["policy"]["policy"] == "fixed"
        assert payload["matrices"]["ad"]["policy"]["policy"] == "adaptive"

    explore(run_registry_policies, sim_seeds(70_000, 60), check=check)
