"""Deterministic simulation scheduler for the serving stack.

The serving layer's concurrency is ordinary threaded Python — a
dispatcher thread, client threads, queues, events, locks, deadlines.
Testing it with real time and a real scheduler samples *one* arbitrary
interleaving per run and hides the rest behind wall-clock sleeps. This
module replaces both schedulers: time and thread interleaving become a
pure function of a seed.

How it works
------------
Tasks are real OS threads, but they are **serialized**: every thread
parks on its own semaphore, and exactly one of {the scheduler, one
task} is ever runnable. A task runs until it touches a simulation
primitive (clock read, queue op, event, lock, sleep, join) — every such
call is a *yield point* that hands control back to the scheduler, which
picks the next runnable task with a seeded counter-based RNG
(:class:`repro.rng.CounterRNG`, the library's own Philox streams) and
advances a virtual clock by a tiny seeded jitter. A task blocked on a
condition (queue non-empty, event set, lock free) is resumed only when
its predicate holds or its virtual deadline passes; when *nothing* is
runnable the clock jumps straight to the earliest deadline — zero
wall-clock sleeping, however long the simulated waits are.

Consequences:

* **Determinism** — with all threads parked except one, the OS scheduler
  has no choices left to make; the whole execution (interleaving,
  clock readings, timeouts) is a pure function of the seed.
* **Replay** — a failing schedule is reproduced exactly by re-running
  with its seed (``pytest tests/serve/simtest --sim-seed=N``).
* **Wedge detection** — a real deadlock (every task blocked, no timed
  wait pending) raises :class:`SimDeadlock` naming the blocked tasks
  instead of hanging the test run.

Foreground vs daemon tasks mirror the threading semantics the server
relies on: :meth:`SimScheduler.task` registers a foreground task and
:meth:`SimScheduler.run` completes when all foreground tasks have
finished; ``runtime.spawn`` (the server's dispatcher) registers a
*daemon* task that may still be blocked at exit, exactly like the
daemon dispatcher thread in production. A daemon task dying of an
exception does not abort the run — it is recorded in
:attr:`SimScheduler.daemon_failures` for the driver to assert on
(the dispatcher *deliberately* re-raises ``KeyboardInterrupt`` and kin).
"""

from __future__ import annotations

import queue as _queue_mod
import threading
from collections import deque

from repro.rng import CounterRNG

__all__ = [
    "SimDeadlock",
    "SimEvent",
    "SimLock",
    "SimQueue",
    "SimRLock",
    "SimRuntime",
    "SimScheduler",
    "SimStall",
    "SimThread",
]

#: Mean virtual seconds consumed per scheduling step (uniform jitter in
#: ``[0, _STEP_JITTER)``) — small enough that linger windows span many
#: interleaving opportunities, large enough that timeouts fire while
#: other tasks make progress.
_STEP_JITTER = 1e-4

_CHUNK = 512  # RNG words drawn per Philox batch


class SimDeadlock(Exception):
    """Every task is blocked, none has a timed wait: a real wedge."""


class SimStall(Exception):
    """The schedule exceeded the step budget (runaway loop guard)."""


class _Killed(BaseException):
    """Raised inside a task at teardown to unwind it; never escapes the
    harness (a ``BaseException`` so ``except Exception`` handlers in
    the code under test cannot swallow it)."""


class _Stream:
    """Chunked draws from one CounterRNG stream (one Philox evaluation
    per ``_CHUNK`` words instead of one per scheduling step)."""

    def __init__(self, rng: CounterRNG):
        self._rng = rng
        self._pos = 0
        self._buf = None
        self._idx = _CHUNK

    def _word(self) -> int:
        if self._idx >= _CHUNK:
            self._buf = self._rng.uint32(self._pos, _CHUNK)
            self._pos += _CHUNK
            self._idx = 0
        w = int(self._buf[self._idx])
        self._idx += 1
        return w

    def pick(self, n: int) -> int:
        """Uniform int in [0, n)."""
        return (self._word() * n) >> 32

    def jitter(self) -> float:
        """Uniform float in [0, _STEP_JITTER)."""
        return self._word() * (_STEP_JITTER / 2.0**32)


class _Task:
    """One simulated thread: a parked OS thread plus its block state."""

    def __init__(self, sched: "SimScheduler", name: str, target, daemon: bool):
        self.sched = sched
        self.name = name
        self.target = target
        self.daemon = daemon
        self.sem = threading.Semaphore(0)
        self.done = False
        self.failure: BaseException | None = None
        # None predicate = plain yield (always runnable once parked).
        self.predicate = None
        self.deadline: float | None = None
        self.thread = threading.Thread(
            target=self._run, name=f"sim:{name}", daemon=True
        )
        self.thread.start()

    def _run(self) -> None:
        self.sem.acquire()  # park until first scheduled
        try:
            if not self.sched._killing:
                self.target()
        except _Killed:
            pass
        except BaseException as exc:  # noqa: BLE001 — report, don't crash
            self.failure = exc
        finally:
            self.done = True
            self.sched._sched_sem.release()

    def runnable(self, now: float) -> bool:
        if self.predicate is None:
            return True
        if self.deadline is not None and now >= self.deadline:
            return True
        return bool(self.predicate())


class SimScheduler:
    """Owns virtual time and the interleaving of registered tasks.

    Parameters
    ----------
    seed:
        The schedule. Same seed, same tasks → identical execution.
    max_steps:
        Runaway guard: :class:`SimStall` after this many scheduling
        steps (a healthy scenario takes hundreds to a few thousand).
    record_trace:
        When true, :attr:`trace` records the picked task name per step
        (the determinism tests diff these).
    """

    def __init__(
        self,
        seed: int,
        *,
        max_steps: int = 200_000,
        record_trace: bool = False,
    ):
        self.seed = int(seed)
        self.now = 0.0
        self._choice = _Stream(CounterRNG(seed, stream=0x5C4E))
        self._jitter = _Stream(CounterRNG(seed, stream=0x71CC))
        self._tasks: list[_Task] = []
        self._task_of: dict[threading.Thread, _Task] = {}
        self._sched_sem = threading.Semaphore(0)
        self._killing = False
        self._steps = 0
        self._max_steps = int(max_steps)
        self.trace: list[str] | None = [] if record_trace else None
        self.runtime = SimRuntime(self)

    # -- task registration ----------------------------------------------

    def task(self, target, name: str) -> "SimThread":
        """Register a foreground task; :meth:`run` waits for it."""
        return self._register(target, name, daemon=False)

    def _register(self, target, name, *, daemon: bool) -> "SimThread":
        task = _Task(self, name or f"task-{len(self._tasks)}", target, daemon)
        self._tasks.append(task)
        self._task_of[task.thread] = task
        return SimThread(self, task)

    # -- the yield point -------------------------------------------------

    def _pause(self, predicate=None, deadline: float | None = None) -> bool:
        """Hand control to the scheduler (every sim primitive calls
        this). With a predicate, do not resume until it holds or the
        virtual ``deadline`` passes; returns the predicate's value at
        resume (``True`` for plain yields).

        Called from a non-task thread (test setup before :meth:`run`,
        or inspection after), this is pass-through: no scheduling
        exists, so it just evaluates the predicate.
        """
        task = self._task_of.get(threading.current_thread())
        if task is None:
            return True if predicate is None else bool(predicate())
        if self._killing:
            raise _Killed()
        task.predicate = predicate
        task.deadline = deadline
        self._sched_sem.release()
        task.sem.acquire()
        if self._killing:
            raise _Killed()
        return True if predicate is None else bool(predicate())

    def sleep(self, seconds: float) -> None:
        """Consume virtual time (the fake pool's solve durations)."""
        deadline = self.now + float(seconds)
        self._pause(lambda: self.now >= deadline, deadline)

    # -- the scheduling loop ---------------------------------------------

    def run(self) -> None:
        """Execute the registered tasks to foreground completion.

        Raises the first foreground task failure (after tearing the
        rest down), :class:`SimDeadlock` on a wedge, :class:`SimStall`
        past the step budget. Daemon failures land in
        :attr:`daemon_failures` instead of raising.
        """
        try:
            while True:
                alive = [t for t in self._tasks if not t.done]
                if not any(not t.daemon for t in alive):
                    break  # all foreground tasks finished
                runnable = [t for t in alive if t.runnable(self.now)]
                if not runnable:
                    deadlines = [
                        t.deadline for t in alive if t.deadline is not None
                    ]
                    if not deadlines:
                        raise SimDeadlock(self._wedge_report(alive))
                    # Nothing can run until a timed wait fires: jump.
                    self.now = max(self.now, min(deadlines))
                    continue
                self._steps += 1
                if self._steps > self._max_steps:
                    raise SimStall(
                        f"seed {self.seed}: exceeded {self._max_steps} "
                        "scheduling steps — livelock or runaway loop"
                    )
                task = runnable[self._choice.pick(len(runnable))]
                self.now += self._jitter.jitter()
                if self.trace is not None:
                    self.trace.append(task.name)
                self._step(task)
                if task.failure is not None and not task.daemon:
                    raise task.failure
        finally:
            self.kill()

    def _step(self, task: _Task) -> None:
        task.predicate = None
        task.deadline = None
        task.sem.release()
        self._sched_sem.acquire()

    def _wedge_report(self, alive: list[_Task]) -> str:
        blocked = ", ".join(
            f"{t.name}{' (daemon)' if t.daemon else ''}" for t in alive
        )
        return (
            f"seed {self.seed}: deadlock after {self._steps} steps at "
            f"t={self.now:.6f} — every task is blocked with no timed "
            f"wait pending: {blocked}. Replay with --sim-seed={self.seed}."
        )

    def kill(self) -> None:
        """Unwind every unfinished task (idempotent). Parked tasks are
        released with the kill flag set; their next yield point raises
        ``_Killed``, which unwinds the task through any ``except
        Exception`` handlers in the code under test."""
        self._killing = True
        for task in self._tasks:
            if not task.done:
                task.sem.release()
                self._sched_sem.acquire()

    @property
    def steps(self) -> int:
        return self._steps

    @property
    def daemon_failures(self) -> list[BaseException]:
        """Exceptions that escaped daemon tasks (e.g. the dispatcher's
        deliberate ``KeyboardInterrupt`` re-raise), in task order."""
        return [
            t.failure
            for t in self._tasks
            if t.daemon and t.failure is not None
        ]


class SimThread:
    """Handle with the ``threading.Thread`` surface the server uses."""

    def __init__(self, sched: SimScheduler, task: _Task):
        self._sched = sched
        self._task = task

    @property
    def name(self) -> str:
        return self._task.name

    def join(self, timeout: float | None = None) -> None:
        deadline = None if timeout is None else self._sched.now + timeout
        self._sched._pause(lambda: self._task.done, deadline)

    def is_alive(self) -> bool:
        self._sched._pause()
        return not self._task.done


class SimLock:
    """Non-reentrant mutex on the simulated scheduler."""

    def __init__(self, sched: SimScheduler):
        self._sched = sched
        self._owner: _Task | None = None

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        sched = self._sched
        me = sched._task_of.get(threading.current_thread())
        if me is not None and self._owner is me:
            raise SimDeadlock(
                f"seed {sched.seed}: task {me.name!r} re-acquired a "
                "non-reentrant lock it already holds"
            )
        deadline = (
            sched.now + timeout if (blocking and timeout >= 0) else None
        )
        if not blocking:
            sched._pause()
            if self._owner is not None:
                return False
        else:
            free = sched._pause(lambda: self._owner is None, deadline)
            if not free:
                return False
            if self._owner is not None:
                # pass-through mode with a dead owner: nothing can ever
                # release it, so surface the wedge instead of spinning
                raise SimDeadlock(
                    f"seed {sched.seed}: lock held by "
                    f"{self._owner.name!r} outside the scheduling loop"
                )
        self._owner = me if me is not None else _DIRECT
        return True

    def release(self) -> None:
        if self._owner is None:
            raise RuntimeError("release of an unheld SimLock")
        self._owner = None
        self._sched._pause()

    def locked(self) -> bool:
        return self._owner is not None

    def __enter__(self) -> "SimLock":
        self.acquire()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.release()
        return False


#: Sentinel owner for acquisitions from outside the scheduling loop
#: (test setup / post-run inspection on the main thread).
_DIRECT = object()


class SimRLock:
    """Reentrant mutex on the simulated scheduler."""

    def __init__(self, sched: SimScheduler):
        self._sched = sched
        self._owner = None
        self._count = 0

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        sched = self._sched
        me = sched._task_of.get(threading.current_thread()) or _DIRECT
        if self._owner is me:
            self._count += 1
            return True
        free = sched._pause(lambda: self._owner is None)
        if not free or self._owner is not None:
            raise SimDeadlock(
                f"seed {sched.seed}: rlock held outside the scheduling loop"
            )
        self._owner = me
        self._count = 1
        return True

    def release(self) -> None:
        if self._count <= 0:
            raise RuntimeError("release of an unheld SimRLock")
        self._count -= 1
        if self._count == 0:
            self._owner = None
            self._sched._pause()

    def __enter__(self) -> "SimRLock":
        self.acquire()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.release()
        return False


class SimEvent:
    """``threading.Event`` on the simulated scheduler."""

    def __init__(self, sched: SimScheduler):
        self._sched = sched
        self._flag = False

    def is_set(self) -> bool:
        # Snapshot, then yield: a real thread can be preempted between
        # reading the flag and acting on the answer, so the returned
        # value must be allowed to go stale.
        flag = self._flag
        self._sched._pause()
        return flag

    def set(self) -> None:
        self._flag = True
        self._sched._pause()

    def clear(self) -> None:
        self._flag = False
        self._sched._pause()

    def wait(self, timeout: float | None = None) -> bool:
        deadline = None if timeout is None else self._sched.now + timeout
        self._sched._pause(lambda: self._flag, deadline)
        return self._flag


class SimQueue:
    """Unbounded FIFO with the ``queue.Queue`` surface the server uses."""

    def __init__(self, sched: SimScheduler):
        self._sched = sched
        self._items: deque = deque()

    def put(self, item) -> None:
        self._sched._pause()
        self._items.append(item)

    def get(self, block: bool = True, timeout: float | None = None):
        sched = self._sched
        if not block:
            return self.get_nowait()
        deadline = None if timeout is None else sched.now + timeout
        got = sched._pause(lambda: bool(self._items), deadline)
        if not got or not self._items:
            raise _queue_mod.Empty
        return self._items.popleft()

    def get_nowait(self):
        self._sched._pause()
        if not self._items:
            raise _queue_mod.Empty
        return self._items.popleft()

    def qsize(self) -> int:
        # Snapshot, then yield (see SimEvent.is_set): by the time the
        # caller acts on this count it may already be stale — exactly
        # the property that makes depth-accounting races reachable.
        size = len(self._items)
        self._sched._pause()
        return size

    def empty(self) -> bool:
        return self.qsize() == 0


class SimRuntime:
    """The :mod:`repro.serve.runtime` contract, on the sim scheduler.

    Inject into :class:`~repro.serve.SolverServer` /
    :class:`~repro.serve.MatrixRegistry` (``runtime=sched.runtime``):
    every clock read, queue op, event, lock, and thread the serving
    stack performs becomes a scheduling decision of the seed.
    """

    def __init__(self, sched: SimScheduler):
        self.sched = sched

    def monotonic(self) -> float:
        # A yield point: clock reads are exactly where real threads get
        # preempted between reading state and acting on it.
        self.sched._pause()
        return self.sched.now

    def queue(self) -> SimQueue:
        return SimQueue(self.sched)

    def event(self) -> SimEvent:
        return SimEvent(self.sched)

    def lock(self) -> SimLock:
        return SimLock(self.sched)

    def rlock(self) -> SimRLock:
        return SimRLock(self.sched)

    def spawn(self, target, name: str | None = None) -> SimThread:
        return self.sched._register(target, name, daemon=True)
