"""Warm-start cache under seeded schedules: dedupe, eviction, crash.

The cache's concurrency claims (module docstring of
``repro/serve/cache.py``) each get a driver swept across its own seed
family: concurrent identical requests collapse to one entry per
fingerprint (``run_cache_dedupe``), a cache hit racing the LRU
eviction of its matrix's pool stays exact with conserved counters and
a guaranteed invalidation (``run_cache_eviction_race``), and a
warm-started batch dying mid-solve neither drops the seeding entry nor
poisons the respawned pool (``run_cache_crash``). Failing seeds replay
with ``--sim-seed=N``.
"""

from __future__ import annotations

import pytest

from .drivers import (
    explore,
    run_cache_crash,
    run_cache_dedupe,
    run_cache_eviction_race,
)

pytestmark = [pytest.mark.simtest, pytest.mark.serve]


def test_cache_dedupe_exploration(sim_seeds):
    def check(out):
        # Under every schedule the duplicates collapsed: strictly fewer
        # entries than stores, and at least one request warm-started or
        # every duplicate raced into flight before the first store.
        assert out["cache"]["entries"] < out["cache"]["stores"]

    explore(run_cache_dedupe, sim_seeds(90_000, 150), check=check)


def test_cache_eviction_race_exploration(sim_seeds):
    def check(out):
        assert out["cache"]["invalidations"] >= 1
        assert out["pools_built"] >= 2

    explore(run_cache_eviction_race, sim_seeds(100_000, 150), check=check)


def test_cache_crash_exploration(sim_seeds):
    def check(out):
        assert "injected worker crash" in out["error"]
        # The crashed warm request is never accounted; the survivor is.
        assert out["cache"]["warm_requests"] == 1

    explore(run_cache_crash, sim_seeds(110_000, 100), check=check)
