"""Fixtures for the simulation suites: seed-range control.

Every exploration test draws its seed range through the ``sim_seeds``
fixture, which is where the command line hooks in:

* ``--sim-seed=N`` replays exactly one schedule — the workflow when a
  sweep (locally or in CI) printed a failing seed.
* ``--sim-count=K`` overrides every sweep's seed count — CI's
  schedule-exploration slice turns it up, quick local runs turn it
  down.

Regression tests pin their own recorded seeds and ignore both knobs.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def sim_seeds(request):
    """``sim_seeds(base, count)`` → the seeds an exploration test runs.

    Disjoint ``base`` values keep scenarios on disjoint schedule
    families, so "seed N" in a failure report is unambiguous."""

    def seeds(base: int, count: int):
        override = request.config.getoption("--sim-seed")
        if override is not None:
            return [int(override)]
        scale = request.config.getoption("--sim-count")
        if scale is not None:
            count = int(scale)
        return [base + i for i in range(count)]

    return seeds
