"""Unit tests for the batching policies and their server integration.

The policy contract: :class:`FixedWait` is byte-for-byte the old
``max_wait`` behavior; :class:`AdaptiveWait` sizes the linger window
from the queue-depth/solve-wall EWMAs the dispatcher feeds it — zero
window for measured-sequential traffic, a solve-fraction window (capped)
once concurrency shows up in the measurements.
"""

import pytest

from repro.exceptions import ServeError
from repro.serve import (
    AdaptiveWait,
    BatchingPolicy,
    FixedWait,
    SolverServer,
    make_policy,
)

from .conftest import WAIT

pytestmark = pytest.mark.serve


class TestFixedWait:
    def test_constant_window(self):
        policy = FixedWait(0.25)
        assert policy.linger(0) == 0.25
        assert policy.linger(100) == 0.25
        policy.observe(batch_size=8, queue_depth=50, solve_wall=3.0)
        assert policy.linger(0) == 0.25  # feedback never moves it

    def test_negative_window_rejected(self):
        with pytest.raises(ServeError, match="non-negative"):
            FixedWait(-0.1)

    def test_snapshot(self):
        assert FixedWait(0.01).snapshot() == {
            "policy": "fixed",
            "max_wait": 0.01,
        }


class TestAdaptiveWait:
    def test_seed_window_before_any_measurement(self):
        policy = AdaptiveWait(initial_wait=0.02)
        assert policy.linger(0) == 0.02
        assert policy.linger(10) == 0.02

    def test_sequential_traffic_collapses_window_to_zero(self):
        """Closed-loop traffic keeps the queue empty; after measuring
        that, lingering would be a pure per-request tax."""
        policy = AdaptiveWait(initial_wait=0.02)
        for _ in range(5):
            policy.observe(batch_size=1, queue_depth=0, solve_wall=0.1)
        assert policy.linger(0) == 0.0

    def test_concurrent_traffic_lingers_a_solve_fraction(self):
        policy = AdaptiveWait(
            initial_wait=0.02, max_wait=10.0, fraction=0.25, alpha=1.0
        )
        policy.observe(batch_size=4, queue_depth=6, solve_wall=0.4)
        assert policy.linger(0) == pytest.approx(0.1)  # 0.25 * 0.4

    def test_window_capped_at_max_wait(self):
        policy = AdaptiveWait(
            initial_wait=0.02, max_wait=0.05, fraction=0.25, alpha=1.0
        )
        policy.observe(batch_size=4, queue_depth=6, solve_wall=100.0)
        assert policy.linger(0) == 0.05

    def test_instantaneous_depth_overrides_quiet_history(self):
        """A burst landing after a quiet spell must not pay the
        sequential-traffic window: the live queue depth is concurrency
        evidence even before the EWMA catches up."""
        policy = AdaptiveWait(
            initial_wait=0.02, max_wait=10.0, fraction=0.25, alpha=0.01
        )
        for _ in range(20):
            policy.observe(batch_size=1, queue_depth=0, solve_wall=0.4)
        assert policy.linger(0) == 0.0
        assert policy.linger(12) > 0.0

    def test_snapshot_reports_ewmas(self):
        policy = AdaptiveWait(alpha=1.0)
        snap = policy.snapshot()
        assert snap["policy"] == "adaptive"
        assert snap["batches_observed"] == 0
        assert snap["current_window"] is None
        policy.observe(batch_size=3, queue_depth=2, solve_wall=0.2)
        snap = policy.snapshot()
        assert snap["batches_observed"] == 1
        assert snap["ewma_queue_depth"] == 2.0
        assert snap["ewma_solve_wall"] == pytest.approx(0.2)
        assert snap["ewma_batch_size"] == 3.0
        assert snap["current_window"] == pytest.approx(0.05)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"alpha": 0.0},
            {"alpha": 1.5},
            {"initial_wait": -1.0},
            {"max_wait": -0.1},
            {"fraction": -0.5},
            {"depth_gate": -1.0},
        ],
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ServeError):
            AdaptiveWait(**kwargs)


class TestMakePolicy:
    def test_fixed_by_name_seeds_max_wait(self):
        policy = make_policy("fixed", 0.042)
        assert isinstance(policy, FixedWait)
        assert policy.max_wait == 0.042

    def test_adaptive_by_name_seeds_initial_wait(self):
        policy = make_policy("adaptive", 0.042)
        assert isinstance(policy, AdaptiveWait)
        assert policy.initial_wait == 0.042
        assert policy.max_wait == 0.05  # default cap covers the seed

    def test_adaptive_cap_never_below_the_operator_window(self):
        """A max_wait above the default cap must raise the cap with it:
        the seed window may not exceed the documented hard limit, and
        the knob must not be silently clamped after the first
        measurement."""
        policy = make_policy("adaptive", 0.25)
        assert policy.initial_wait == 0.25
        assert policy.max_wait == 0.25
        policy.observe(batch_size=4, queue_depth=6, solve_wall=100.0)
        assert policy.linger(0) == 0.25

    def test_adaptive_honors_explicit_zero_max_wait(self):
        """The SolverServer contract says "0 disables lingering" — under
        **both** policies. Pre-fix, the adaptive branch raised the cap
        to max(0.05, 0) and lingered up to 50 ms once the EWMAs crossed
        the depth gate, overriding the operator's explicit 0."""
        policy = make_policy("adaptive", 0.0)
        assert policy.max_wait == 0.0
        assert policy.linger(10) == 0.0  # pre-measurement window is 0 too
        for _ in range(3):
            policy.observe(batch_size=2, queue_depth=8, solve_wall=0.5)
        assert policy.linger(10) == 0.0  # measurements land, still 0
        assert policy.snapshot()["current_window"] == 0.0

    def test_fixed_honors_explicit_zero_max_wait(self):
        policy = make_policy("fixed", 0.0)
        policy.observe(batch_size=2, queue_depth=8, solve_wall=0.5)
        assert policy.linger(10) == 0.0

    def test_adaptive_ewma_trajectory_is_exact(self):
        """The window trajectory is pure arithmetic on the observation
        sequence — no sleeping, no clock: feed three batches and check
        the blended EWMAs and the derived window exactly."""
        policy = make_policy("adaptive", 0.01)
        alpha = policy.alpha
        depths, solves = [4.0, 2.0, 0.0], [0.2, 0.4, 0.1]
        ewma_d = ewma_s = None
        for d, s in zip(depths, solves):
            policy.observe(batch_size=2, queue_depth=int(d), solve_wall=s)
            ewma_d = d if ewma_d is None else (1 - alpha) * ewma_d + alpha * d
            ewma_s = s if ewma_s is None else (1 - alpha) * ewma_s + alpha * s
        snap = policy.snapshot()
        assert snap["ewma_queue_depth"] == pytest.approx(ewma_d)
        assert snap["ewma_solve_wall"] == pytest.approx(ewma_s)
        assert policy.linger(0) == pytest.approx(
            min(policy.max_wait, policy.fraction * ewma_s)
        )

    def test_instance_passes_through(self):
        policy = FixedWait(0.1)
        assert make_policy(policy, 0.5) is policy

    def test_unknown_name_rejected(self):
        with pytest.raises(ServeError, match="unknown batching policy"):
            make_policy("exponential", 0.01)


class TestServerIntegration:
    def test_adaptive_server_answers_correctly(self, system):
        """The policy only times the batcher — results are untouched."""
        A, b, _ = system
        with SolverServer(
            A, nproc=1, capacity_k=4, tol=1e-8, max_sweeps=300,
            sync_every_sweeps=10, policy="adaptive",
        ) as srv:
            first = srv.solve(b, timeout=WAIT)
            second = srv.solve(b, timeout=WAIT)
            stats = srv.stats()
        assert first.converged and second.converged
        assert stats.policy["policy"] == "adaptive"
        assert stats.policy["batches_observed"] == 2

    def test_stats_carry_policy_snapshot(self, system):
        A, b, _ = system
        with SolverServer(
            A, nproc=1, capacity_k=2, max_wait=0.007
        ) as srv:
            srv.solve(b, timeout=WAIT)
            stats = srv.stats()
        assert stats.policy == {"policy": "fixed", "max_wait": 0.007}

    def test_custom_policy_instance_accepted(self, system):
        A, b, _ = system

        class Eager(BatchingPolicy):
            name = "eager"

            def linger(self, queue_depth):
                return 0.0

        with SolverServer(
            A, nproc=1, capacity_k=2, policy=Eager()
        ) as srv:
            assert srv.solve(b, timeout=WAIT).converged
            assert srv.stats().policy == {"policy": "eager"}

    def test_unknown_policy_name_fails_before_spawning(self, system):
        A, _, _ = system
        with pytest.raises(ServeError, match="unknown batching policy"):
            SolverServer(A, nproc=1, capacity_k=2, policy="bogus")
