"""Unit tests for :class:`repro.serve.SolverServer` and the protocol.

The concurrency/stress side lives in ``test_stress.py``; this file pins
the per-feature contracts: request/response correctness against the
serial solver, the batching policy, per-request overrides, lifecycle,
stats, and the JSON-lines protocol.
"""

import json

import numpy as np
import pytest

from repro.core import AsyRGS
from repro.exceptions import ServeError, ShapeError
from repro.serve import (
    SolverServer,
    encode_error,
    encode_info,
    encode_result,
    parse_line,
    parse_request,
)

from .conftest import WAIT

pytestmark = pytest.mark.serve


@pytest.fixture()
def server(system):
    A, _, _ = system
    with SolverServer(
        A, nproc=1, capacity_k=6, tol=1e-8, max_sweeps=300,
        sync_every_sweeps=10, max_wait=0.0,
    ) as srv:
        yield srv


class TestSingleRequests:
    def test_matches_equivalent_serial_solve(self, server, block_system):
        """A served request must answer exactly like AsyRGS.solve on the
        same engine/stream (nproc=1 is deterministic; the capacity pool
        takes the same scalar gather path for a lone active column)."""
        A, B, _ = block_system
        res = server.solve(B[:, 0], timeout=WAIT)
        ref = AsyRGS(A, B[:, 0], nproc=1, engine="processes").solve(
            tol=1e-8, max_sweeps=300, sync_every_sweeps=10
        )
        assert res.converged and ref.converged
        np.testing.assert_array_equal(res.x, ref.x)
        assert res.sweeps == int(ref.column_sweeps[0])

    def test_repeated_request_is_bit_deterministic(self, server, system):
        """Pool reuse must not leak state: the same request twice on one
        live pool returns identical bytes."""
        _, b, _ = system
        r1 = server.solve(b, timeout=WAIT)
        r2 = server.solve(b, timeout=WAIT)
        np.testing.assert_array_equal(r1.x, r2.x)
        assert r1.sweeps == r2.sweeps
        assert server.spawn_count == 1

    def test_result_shape_and_metadata(self, server, system):
        _, b, _ = system
        res = server.solve(b, timeout=WAIT)
        assert res.x.shape == b.shape
        assert res.converged
        assert res.residual < 1e-8
        assert res.batch_size == 1
        assert res.latency >= res.queue_wait >= 0.0
        assert res.solve_wall > 0.0
        assert res.column_sweeps is None  # per-column detail is for blocks

    def test_submit_copies_payload(self, server, system):
        """The request is not read until its batch launches, so the
        payload must be snapshotted at submit: a caller reusing its
        buffer must not retroactively change what is solved."""
        A, b, _ = system
        buf = b.copy()
        handle = server.submit(buf)
        buf[:] = 0.0  # client reuses its buffer immediately
        res = handle.result(WAIT)
        assert res.converged
        resid = np.linalg.norm(b - A.matvec(res.x))
        assert resid < 1e-6 * np.linalg.norm(b)

    def test_per_request_x0_warm_start(self, server, system):
        """A warm start at the exact solution converges at sweep 0."""
        A, b, x_star = system
        res = server.solve(b, x0=x_star, timeout=WAIT)
        assert res.converged
        assert res.sweeps == 0
        np.testing.assert_array_equal(res.x, x_star)

    def test_per_request_tolerance(self, server, system):
        """A looser per-request tol retires earlier than the default."""
        _, b, _ = system
        loose = server.solve(b, tol=1e-2, timeout=WAIT)
        tight = server.solve(b, tol=1e-10, timeout=WAIT)
        assert loose.converged and tight.converged
        assert loose.sweeps <= tight.sweeps
        assert loose.residual < 1e-2 and tight.residual < 1e-10


class TestBlockRequests:
    def test_block_matches_equivalent_serial_solve(self, server, block_system):
        A, B, _ = block_system
        res = server.solve(B, timeout=WAIT)
        ref = AsyRGS(A, B, nproc=1, engine="processes").solve(
            tol=1e-8, max_sweeps=300, sync_every_sweeps=10
        )
        assert res.converged and ref.converged
        np.testing.assert_array_equal(res.x, ref.x)
        np.testing.assert_array_equal(res.column_sweeps, ref.column_sweeps)
        assert res.column_converged.all()
        assert (res.column_residuals < 1e-8).all()
        assert res.batch_size == 1  # blocks are never coalesced

    def test_narrow_block_on_wide_pool(self, server, block_system):
        _, B, X_star = block_system
        res = server.solve(B[:, :3], timeout=WAIT)
        assert res.x.shape == (B.shape[0], 3)
        assert res.converged
        assert np.abs(res.x - X_star[:, :3]).max() < 1e-5
        assert server.spawn_count == 1

    def test_block_wider_than_capacity_rejected(self, server, block_system):
        _, B, _ = block_system
        too_wide = np.hstack([B, B])  # 12 > capacity 6
        with pytest.raises(ShapeError, match="layout capacity"):
            server.submit(too_wide)


class TestBatching:
    def test_quiet_queue_batches_alone(self, server, system):
        """max_wait=0: a lone request must not linger for company."""
        _, b, _ = system
        res = server.solve(b, timeout=WAIT)
        assert res.batch_size == 1

    def test_compatible_singles_coalesce(self, block_system):
        """With a lingering dispatcher, a burst of compatible requests
        rides one block solve and every slice is correct."""
        A, B, X_star = block_system
        k = B.shape[1]
        with SolverServer(
            A, nproc=1, capacity_k=k, tol=1e-8, max_sweeps=300,
            sync_every_sweeps=10, max_wait=2.0,
        ) as srv:
            handles = [srv.submit(B[:, j]) for j in range(k)]
            results = [h.result(WAIT) for h in handles]
            stats = srv.stats()
        assert all(r.converged for r in results)
        for j, r in enumerate(results):
            assert np.abs(r.x - X_star[:, j]).max() < 1e-5
        # The burst coalesced: far fewer batches than requests (the
        # first may have launched alone before the burst landed).
        assert stats.batches < k
        assert stats.max_batch_size >= 2
        assert any(r.batch_size >= 2 for r in results)

    def test_incompatible_tolerances_split_batches(self, block_system):
        """Different solve parameters must never share a batch — each
        request's tolerance is honored exactly."""
        A, B, _ = block_system
        with SolverServer(
            A, nproc=1, capacity_k=4, tol=1e-8, max_sweeps=300,
            sync_every_sweeps=10, max_wait=2.0,
        ) as srv:
            h1 = srv.submit(B[:, 0], tol=1e-3)
            h2 = srv.submit(B[:, 1], tol=1e-9)
            r1, r2 = h1.result(WAIT), h2.result(WAIT)
            stats = srv.stats()
        assert stats.batches == 2
        assert r1.batch_size == r2.batch_size == 1
        assert r1.residual < 1e-3 and r2.residual < 1e-9

    def test_max_batch_caps_coalescing(self, block_system):
        A, B, _ = block_system
        k = B.shape[1]
        with SolverServer(
            A, nproc=1, capacity_k=k, tol=1e-8, max_sweeps=300,
            sync_every_sweeps=10, max_wait=2.0, max_batch=2,
        ) as srv:
            handles = [srv.submit(B[:, j]) for j in range(k)]
            results = [h.result(WAIT) for h in handles]
            stats = srv.stats()
        assert all(r.converged for r in results)
        assert stats.max_batch_size <= 2
        assert stats.batches >= k // 2

    def test_max_batch_bounded_by_capacity(self, system):
        A, _, _ = system
        srv = SolverServer(A, nproc=1, capacity_k=3, max_batch=100)
        try:
            assert srv.max_batch == 3
        finally:
            srv.close()


class TestLifecycle:
    def test_submit_after_close_raises(self, system):
        A, b, _ = system
        srv = SolverServer(A, nproc=1, capacity_k=2)
        srv.close()
        with pytest.raises(ServeError, match="closed"):
            srv.submit(b)

    def test_close_is_idempotent(self, system):
        A, _, _ = system
        srv = SolverServer(A, nproc=1, capacity_k=2)
        srv.close()
        srv.close()

    def test_close_drains_inflight_requests(self, system):
        """Requests submitted before close() are served, not dropped."""
        A, b, _ = system
        srv = SolverServer(
            A, nproc=1, capacity_k=2, tol=1e-8, max_sweeps=300, max_wait=0.0
        )
        handles = [srv.submit(b * (j + 1.0)) for j in range(4)]
        srv.close()
        for h in handles:
            assert h.result(WAIT).converged

    def test_result_timeout_raises_without_cancelling(self, server, system):
        _, b, _ = system
        handle = server.submit(b)
        with pytest.raises(ServeError, match="did not complete"):
            handle.result(0.0)
        assert handle.result(WAIT).converged  # still completes

    def test_invalid_request_shapes_rejected_at_submit(self, server, system):
        _, b, _ = system
        with pytest.raises(ShapeError):
            server.submit(b[:-1])
        with pytest.raises(ShapeError):
            server.submit(np.zeros((b.shape[0], 2, 2)))
        with pytest.raises(ShapeError):
            server.submit(b, x0=np.zeros(5))


class TestStats:
    def test_counters_add_up(self, server, system):
        _, b, _ = system
        for j in range(3):
            server.solve(b * (j + 1.0), timeout=WAIT)
        stats = server.stats()
        assert stats.requests_submitted == 3
        assert stats.requests_served == 3
        assert stats.requests_failed == 0
        assert stats.batches == 3  # sequential solves cannot coalesce
        assert stats.latency_mean > 0.0
        assert stats.latency_max >= stats.latency_mean
        assert stats.spawn_count == 1
        assert len(stats.worker_pids) == 1
        assert stats.mean_batch_size == 1.0


class TestProtocol:
    def test_parse_minimal_request(self):
        kwargs = parse_request('{"b": [1.0, 2.0]}')
        trace = kwargs.pop("trace_id")
        assert trace.startswith("t-")  # minted at the parse seam
        assert kwargs == {"b": [1.0, 2.0]}

    def test_parse_full_request(self):
        kwargs = parse_request(
            '{"id": "r1", "b": [1, 2], "tol": 0.5, "max_sweeps": 7, '
            '"sync_every_sweeps": 3, "x0": [0, 0]}'
        )
        assert kwargs["request_id"] == "r1"
        assert kwargs["tol"] == 0.5
        assert kwargs["max_sweeps"] == 7
        assert kwargs["sync_every_sweeps"] == 3
        assert kwargs["x0"] == [0, 0]

    @pytest.mark.parametrize(
        "line, match",
        [
            ("not json", "not valid JSON"),
            ("[1, 2]", "must be a JSON object"),
            ('{"tol": 1.0}', 'required "b"'),
            ('{"b": [1], "bogus": 2}', "unknown request field"),
        ],
    )
    def test_parse_rejects_malformed(self, line, match):
        with pytest.raises(ServeError, match=match):
            parse_request(line)

    def test_encode_roundtrip(self, server, system):
        _, b, _ = system
        res = server.solve(b, request_id="req-7", timeout=WAIT)
        obj = json.loads(encode_result(res))
        assert obj["id"] == "req-7"
        assert obj["ok"] is True
        assert obj["converged"] is True
        assert obj["sweeps"] == res.sweeps
        np.testing.assert_allclose(obj["x"], res.x)

    def test_encode_block_result_has_column_detail(self, server, block_system):
        _, B, _ = block_system
        res = server.solve(B[:, :2], timeout=WAIT)
        obj = json.loads(encode_result(res))
        assert len(obj["column_sweeps"]) == 2
        assert obj["column_converged"] == [True, True]

    def test_encode_error(self):
        obj = json.loads(encode_error("r9", ValueError("boom")))
        assert obj == {
            "id": "r9", "ok": False, "trace_id": None, "error": "boom",
        }
        obj = json.loads(encode_error("r9", ValueError("boom"), "t-x-1"))
        assert obj["trace_id"] == "t-x-1"

    def test_encode_info(self):
        obj = json.loads(encode_info("r2", {"registered": "m", "n": 4}))
        assert obj == {
            "id": "r2", "ok": True, "trace_id": None,
            "registered": "m", "n": 4,
        }

    def test_parse_matrix_field(self):
        kwargs = parse_request('{"b": [1.0], "matrix": "lap"}')
        kwargs.pop("trace_id")
        assert kwargs == {"b": [1.0], "matrix": "lap"}
        with pytest.raises(ServeError, match="string id"):
            parse_request('{"b": [1.0], "matrix": 7}')

    def test_protocol_errors_carry_the_id_when_json_parsed(self):
        """The id-echo contract: valid JSON => the error names the
        request; unparseable line => request_id is None."""
        from repro.exceptions import ProtocolError

        cases = [
            ('{"id": "x", "b": [1], "bogus": 2}', "x"),
            ('{"id": "y", "tol": 1.0}', "y"),
            ('{"id": "z", "b": [1], "tol": "huh"}', "z"),
            ("utterly not json", None),
        ]
        for line, expected_id in cases:
            with pytest.raises(ProtocolError) as err:
                parse_request(line)
            assert err.value.request_id == expected_id

    def test_parse_line_dispatches_verbs(self):
        op, payload = parse_line('{"b": [1.0]}')
        assert (op, payload["b"]) == ("solve", [1.0])
        assert payload["trace_id"].startswith("t-")
        op, payload = parse_line(
            '{"op": "register", "id": "r", "matrix": "m", "problem": "p"}'
        )
        assert op == "register"
        payload.pop("trace_id")
        assert payload == {"request_id": "r", "matrix": "m", "problem": "p"}
        op, payload = parse_line('{"op": "stats", "matrix": "m"}')
        assert (op, payload["matrix"]) == ("stats", "m")
        op, payload = parse_line('{"op": "matrices"}')
        assert op == "matrices"
        assert payload["request_id"] is None
        assert payload["trace_id"].startswith("t-")

    @pytest.mark.parametrize(
        "line, match",
        [
            ('{"op": "dance"}', 'unknown "op"'),
            ('{"op": "register", "matrix": "m"}', "exactly one"),
            (
                '{"op": "register", "matrix": "m", "problem": "p", '
                '"path": "q"}',
                "exactly one",
            ),
            ('{"op": "register", "problem": "p"}', '"matrix" id'),
            ('{"op": "stats", "b": [1.0]}', "unknown stats field"),
            ('{"op": "matrices", "matrix": "m"}', "unknown matrices field"),
            ('{"op": "solve"}', 'required "b"'),
        ],
    )
    def test_parse_line_rejects_malformed_verbs(self, line, match):
        with pytest.raises(ServeError, match=match):
            parse_line(line)

    def test_parse_request_rejects_non_solve_ops(self):
        with pytest.raises(ServeError, match="not a solve request"):
            parse_request('{"op": "stats", "id": "q"}')
