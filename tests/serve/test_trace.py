"""Trace-id regression tests: every reply carries one, failures first.

The tracing contract (:mod:`repro.serve.protocol`): a trace id is
minted — or adopted from the client's ``trace_id`` field — the moment a
line arrives at :func:`parse_line`, rides the request through
submission on its handle, and is echoed in **every** response. The
happy path is easy; these tests pin the ``ok: false`` paths, where the
id must be read off whatever the failure left standing — the
:class:`~repro.exceptions.ProtocolError`, the parsed payload, or the
handle — across all three transports (stdin JSON-lines, TCP, HTTP).

The pool behind every server here is the simtest
:class:`~tests.serve.simtest.fakes.FakePool` under the *real* threading
runtime: exact diagonal solves and scripted crashes with zero worker
processes and zero sleeps (coordination is joins and scripted failure
indices only).
"""

import io
import json
import socket
import threading

import numpy as np
import pytest

from repro.exceptions import ProtocolError, ServeError
from repro.serve import (
    SolverServer,
    make_http_server,
    make_tcp_server,
    mint_trace_id,
    serve_stream,
)
from repro.serve.protocol import encode_error, parse_line, parse_request

from .conftest import WAIT
from .simtest.fakes import diagonal_system, fake_factory

pytestmark = pytest.mark.serve

N = 8
DIAG = 2.0 ** (np.arange(N) % 3)


def _fake_server(fail_on=None, **kwargs):
    return SolverServer(
        diagonal_system(DIAG),
        nproc=1,
        capacity_k=2,
        max_wait=0.0,
        solver_factory=fake_factory(fail_on=fail_on),
        **kwargs,
    )


def _solve_line(trace=None, request_id="r", **extra):
    obj = {"id": request_id, "b": [1.0] * N, **extra}
    if trace is not None:
        obj["trace_id"] = trace
    return json.dumps(obj)


class TestMinting:
    def test_mint_is_unique_and_prefixed(self):
        a, b = mint_trace_id(), mint_trace_id()
        assert a.startswith("t-") and b.startswith("t-")
        assert a != b

    def test_parse_line_mints_per_line(self):
        traces = set()
        for line in ('{"b": [1.0]}', '{"op": "stats"}', '{"op": "metrics"}'):
            _, payload = parse_line(line)
            traces.add(payload["trace_id"])
        assert len(traces) == 3
        assert all(t.startswith("t-") for t in traces)

    def test_client_trace_is_adopted_not_replaced(self):
        _, payload = parse_line('{"b": [1.0], "trace_id": "t-mine-7"}')
        assert payload["trace_id"] == "t-mine-7"
        kwargs = parse_request('{"b": [1.0], "trace_id": "t-mine-8"}')
        assert kwargs["trace_id"] == "t-mine-8"

    @pytest.mark.parametrize("bad", ["7", '""', "[1]"])
    def test_ill_typed_trace_fails_with_a_minted_trace(self, bad):
        """A broken trace field cannot carry the error's trace — the
        response still needs one, so a fresh id is minted."""
        with pytest.raises(ProtocolError) as err:
            parse_line('{"b": [1.0], "trace_id": %s}' % bad)
        assert err.value.trace_id.startswith("t-")

    def test_protocol_errors_always_carry_a_trace(self):
        """Every parse failure — unparseable JSON included — rides out
        with a trace id, so the error response is traceable even when
        the request never was a request."""
        cases = [
            "utterly not json",
            "[1, 2]",
            '{"id": "x", "b": [1], "bogus": 2}',
            '{"op": "dance"}',
            '{"op": "register", "matrix": "m"}',
            '{"op": "metrics", "b": [1.0]}',
        ]
        for line in cases:
            with pytest.raises(ProtocolError) as err:
                parse_line(line)
            assert err.value.trace_id.startswith("t-"), line

    def test_encode_error_reads_the_trace_off_the_exception(self):
        exc = ProtocolError("nope", request_id="q", trace_id="t-exc-1")
        obj = json.loads(encode_error("q", exc))
        assert obj == {
            "id": "q", "ok": False, "trace_id": "t-exc-1", "error": "nope",
        }


class TestStdinErrorPaths:
    def test_every_response_carries_a_trace(self):
        """One stream mixing success, client-traced requests, parse
        failures, and a validation failure: each reply line carries a
        trace id, and a client-supplied one comes back verbatim."""
        lines = [
            _solve_line(request_id="ok1"),
            _solve_line(trace="t-client-1", request_id="ok2"),
            "not json at all",
            '{"id": "bad1", "b": [1.0], "bogus": 2}',
            '{"id": "bad2", "b": [1.0], "bogus": 2, "trace_id": "t-client-2"}',
            json.dumps({"id": "bad3", "b": [1.0, 2.0],
                        "trace_id": "t-client-3"}),  # wrong length rhs
        ]
        out = io.StringIO()
        with _fake_server() as server:
            handled = serve_stream(server, iter(lines), out)
        assert handled == len(lines)
        replies = {}
        for ln in out.getvalue().splitlines():
            obj = json.loads(ln)
            assert obj["trace_id"], f"untraced reply: {obj}"
            replies[obj["id"]] = obj
        assert replies["ok1"]["ok"] and replies["ok2"]["ok"]
        assert replies["ok2"]["trace_id"] == "t-client-1"
        assert replies[None]["ok"] is False  # the unparseable line
        assert replies[None]["trace_id"].startswith("t-")
        assert replies["bad1"]["ok"] is False
        assert replies["bad2"]["trace_id"] == "t-client-2"
        # The submit-failure path (parsed fine, rejected by validation).
        assert replies["bad3"]["ok"] is False
        assert replies["bad3"]["trace_id"] == "t-client-3"

    def test_crash_containment_keeps_the_trace_on_the_handle(self):
        """A batch that dies mid-solve answers ``ok: false`` with the
        *request's* trace — read off its handle, since no exception or
        payload survives to the response path — and the healed pool
        echoes traces again."""
        lines = [
            _solve_line(trace="t-doomed-1", request_id="doomed"),
            # A different tolerance keeps this out of the doomed batch:
            # incompatible keys never coalesce, so it is the respawned
            # pool's first solve.
            _solve_line(trace="t-healed-1", request_id="healed", tol=1e-3),
        ]
        out = io.StringIO()
        with _fake_server(
            fail_on={1: Exception("injected worker crash")}
        ) as server:
            serve_stream(server, iter(lines), out)
        doomed, healed = [json.loads(ln) for ln in out.getvalue().splitlines()]
        assert doomed["id"] == "doomed" and doomed["ok"] is False
        assert "injected worker crash" in doomed["error"]
        assert doomed["trace_id"] == "t-doomed-1"
        assert healed["ok"] and healed["trace_id"] == "t-healed-1"

    @pytest.mark.filterwarnings(
        "ignore::pytest.PytestUnhandledThreadExceptionWarning"
    )
    def test_broken_server_fast_fail_echoes_the_trace(self):
        """After a BaseException kills the dispatcher, later requests
        fail at ``submit()`` — the parsed payload is all that exists,
        and its trace must come back on the error. (The dispatcher
        thread dying with the injected BaseException is the scenario,
        hence the suppressed thread-exception warning.)"""
        with _fake_server(fail_on={1: KeyboardInterrupt("killed")}) as server:
            first = io.StringIO()
            serve_stream(
                server,
                iter([_solve_line(trace="t-first-1", request_id="first")]),
                first,
            )
            server._dispatcher.join()  # the death is now fully landed
            out = io.StringIO()
            serve_stream(
                server,
                iter([_solve_line(trace="t-late-1", request_id="late")]),
                out,
            )
        (late,) = [json.loads(ln) for ln in out.getvalue().splitlines()]
        assert late["ok"] is False and late["id"] == "late"
        assert "KeyboardInterrupt" in late["error"]
        assert late["trace_id"] == "t-late-1"


class TestTCPErrorPaths:
    def test_malformed_and_traced_lines_over_a_socket(self):
        with _fake_server() as server:
            tcp = make_tcp_server(server, "127.0.0.1", 0)
            host, port = tcp.server_address[:2]
            runner = threading.Thread(target=tcp.serve_forever, daemon=True)
            runner.start()
            try:
                with socket.create_connection(
                    (host, port), timeout=WAIT
                ) as sock:
                    payload = (
                        "garbage\n"
                        + _solve_line(trace="t-tcp-1", request_id="tr")
                        + "\n"
                        + '{"id": "tb", "b": [1.0], "bogus": 2, '
                        '"trace_id": "t-tcp-2"}\n'
                    )
                    sock.sendall(payload.encode())
                    sock.shutdown(socket.SHUT_WR)
                    raw = b""
                    while chunk := sock.recv(65536):
                        raw += chunk
            finally:
                tcp.shutdown()
                tcp.server_close()
        bad, ok, traced_bad = [
            json.loads(ln) for ln in raw.decode().splitlines()
        ]
        assert bad["ok"] is False and bad["trace_id"].startswith("t-")
        assert ok["ok"] and ok["trace_id"] == "t-tcp-1"
        assert traced_bad["ok"] is False
        assert traced_bad["trace_id"] == "t-tcp-2"


class TestHTTPErrorPaths:
    @pytest.fixture()
    def http_front(self):
        import http.client

        with _fake_server() as server:
            httpd = make_http_server(server, "127.0.0.1", 0)
            runner = threading.Thread(target=httpd.serve_forever, daemon=True)
            runner.start()
            host, port = httpd.server_address[:2]
            conn = http.client.HTTPConnection(host, port, timeout=WAIT)
            try:
                yield conn
            finally:
                conn.close()
                httpd.shutdown()
                httpd.server_close()

    def _request(self, conn, method, path, body=None):
        conn.request(
            method, path, body=None if body is None else body.encode()
        )
        resp = conn.getresponse()
        return resp, resp.read().decode()

    def test_400_paths_carry_the_trace(self, http_front):
        resp, body = self._request(
            http_front, "POST", "/v1/solve",
            '{"id": "hb", "b": [1.0], "bogus": 2, "trace_id": "t-http-1"}',
        )
        obj = json.loads(body)
        assert resp.status == 400 and obj["ok"] is False
        assert obj["trace_id"] == "t-http-1"
        resp, body = self._request(
            http_front, "POST", "/v1/solve", "not json"
        )
        obj = json.loads(body)
        assert resp.status == 400
        assert obj["id"] is None and obj["trace_id"].startswith("t-")

    def test_404_routes_are_traced_too(self, http_front):
        for method, path in (("POST", "/v1/nope"), ("GET", "/v1/nope")):
            resp, body = self._request(http_front, method, path, "{}")
            obj = json.loads(body)
            assert resp.status == 404 and obj["ok"] is False
            assert obj["trace_id"].startswith("t-")

    def test_metrics_route_traces_via_header(self, http_front):
        """The one non-JSON route: the trace rides an ``X-Trace-Id``
        header instead of a body field."""
        resp, body = self._request(http_front, "GET", "/v1/metrics")
        assert resp.status == 200
        assert resp.getheader("X-Trace-Id", "").startswith("t-")
        assert resp.getheader("Content-Type", "").startswith("text/plain")
        assert "repro_requests_served_total" in body
