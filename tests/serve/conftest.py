"""Shared fixtures for the solver-serving suite.

Everything here must terminate on any machine — servers are always
closed by the fixtures, every ``result()`` call carries a timeout, and
the system is small enough that a single worker converges in well under
a second. The suite runs in its own CI slice under a shell-level hard
timeout, so a deadlocked queue fails fast instead of hanging the job.
"""

import numpy as np
import pytest

from repro.rng import DirectionStream
from repro.workloads import random_unit_diagonal_spd

from ..conftest import manufactured_system

# Generous but bounded: far above any healthy solve on these sizes,
# far below the CI hard timeout.
WAIT = 120.0


@pytest.fixture(scope="session")
def system():
    A = random_unit_diagonal_spd(30, nnz_per_row=4, offdiag_scale=0.6, seed=8)
    b, x_star = manufactured_system(A, seed=9)
    return A, b, x_star


@pytest.fixture(scope="session")
def block_system(system):
    """The session system extended to a 6-column RHS block."""
    A, b, _ = system
    n = A.shape[0]
    rng = DirectionStream(n, seed=44)
    X_star = np.column_stack(
        [rng.directions(j * n, n).astype(np.float64) / n - 0.5 for j in range(6)]
    )
    return A, A.matmat(X_star), X_star
