"""Test package."""
