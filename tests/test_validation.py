"""The shared ShapeError wording table (:mod:`repro.validation`).

Every engine and the façade must reject a malformed right-hand side
with the *same* error text — the table is the contract. These tests pin
the wording identity across entry points and the two negative cases the
engines historically leaked NumPy internals for: wrong-dtype ``b`` and
(the positive case) non-contiguous ``b`` blocks, which must simply
work. The multiprocess variants live in
``tests/execution/test_processes.py``; everything here is tier-1.
"""

import numpy as np
import pytest

from repro.core import AsyRGS
from repro.core.least_squares import (
    AsyncLeastSquares,
    normal_equations,
    rcd_least_squares,
)
from repro.exceptions import ShapeError
from repro.execution import (
    AsyncSimulator,
    AsyRK,
    PhasedSimulator,
    ThreadedAsyRGS,
    ZeroDelay,
)
from repro.rng import DirectionStream
from repro.validation import check_rhs, check_x0
from repro.workloads import random_least_squares, random_unit_diagonal_spd


@pytest.fixture(scope="module")
def system():
    A = random_unit_diagonal_spd(20, nnz_per_row=3, offdiag_scale=0.5, seed=4)
    n = A.shape[0]
    rng = DirectionStream(n, seed=17)
    X = np.column_stack(
        [rng.directions(j * n, n).astype(np.float64) / n - 0.5 for j in range(3)]
    )
    return A, A.matmat(X)


def entry_points(A):
    """Every constructor that applies the shared b contract."""
    return {
        "facade-phased": lambda b: AsyRGS(A, b, nproc=2, engine="phased"),
        "facade-general": lambda b: AsyRGS(A, b, nproc=2, engine="general"),
        "phased": lambda b: PhasedSimulator(A, b, nproc=2),
        "general": lambda b: AsyncSimulator(A, b, delay_model=ZeroDelay()),
        "threads": lambda b: ThreadedAsyRGS(A, b, nthreads=2),
    }


class TestWordingTable:
    @pytest.mark.parametrize(
        "bad",
        [
            np.zeros(7),  # wrong rows
            np.zeros((7, 2)),  # wrong rows, block
            np.zeros((20, 2, 2)),  # wrong ndim
        ],
        ids=["rows-vector", "rows-block", "ndim"],
    )
    def test_same_message_from_every_entry_point(self, system, bad):
        """One malformed b, one message — byte-identical across the
        façade, both simulators, and the threaded backend."""
        A, _ = system
        messages = set()
        for name, make in entry_points(A).items():
            with pytest.raises(ShapeError) as err:
                make(bad)
            messages.add(str(err.value))
        assert len(messages) == 1, messages

    def test_complex_b_rejected_everywhere(self, system):
        A, B = system
        bad = B.astype(np.complex128)
        messages = set()
        for name, make in entry_points(A).items():
            with pytest.raises(ShapeError, match="cannot be converted") as err:
                make(bad)
            messages.add(str(err.value))
        assert len(messages) == 1, messages

    def test_string_b_rejected(self, system):
        A, _ = system
        with pytest.raises(ShapeError, match="cannot be converted"):
            AsyRGS(A, ["not", "numbers"] * 10)

    def test_ragged_b_rejected(self, system):
        A, _ = system
        with pytest.raises(ShapeError, match="cannot be converted"):
            AsyRGS(A, [[1.0], [1.0, 2.0]])

    def test_capacity_wording_names_the_fix(self, system):
        from repro.execution import ProcessAsyRGS

        A, B = system
        solver = ProcessAsyRGS(A, B[:, 0], nproc=1, capacity_k=2)
        with pytest.raises(ShapeError) as err:
            solver._check_b(B)  # 3 columns > capacity 2
        assert "capacity_k >= 3" in str(err.value)

    def test_x0_wording_uniform(self, system):
        A, B = system
        wrong = np.zeros(5)
        messages = set()
        for solver in (
            AsyRGS(A, B[:, 0], nproc=2, engine="phased"),
            ThreadedAsyRGS(A, B[:, 0], nthreads=2),
        ):
            with pytest.raises(ShapeError) as err:
                solver.run_sweeps(1, wrong) if isinstance(
                    solver, AsyRGS
                ) else solver.run(wrong, 10)
            messages.add(str(err.value))
        assert len(messages) == 1, messages
        assert "x0 has shape" in messages.pop()


class TestRectangularWordingTable:
    """The same table serves the rectangular entry points: the scalar
    least-squares paths validate through ``check_vector_rhs`` and AsyRK
    through ``check_rhs``, so a malformed ``b`` on an m×n system fails
    with wording from :mod:`repro.validation` everywhere."""

    @pytest.fixture(scope="class")
    def rect(self):
        return random_least_squares(30, 8, nnz_per_row=4, seed=2).A

    @staticmethod
    def vector_entry_points(A):
        """Every rectangular constructor with the vector-b contract."""
        return {
            "normal-equations": lambda b: normal_equations(A, b),
            "rcd": lambda b: rcd_least_squares(A, b, iterations=1),
            "async-ls": lambda b: AsyncLeastSquares(A, b),
        }

    def test_vector_paths_share_wording(self, rect):
        """Wrong-rows b: one message across all three scalar paths, and
        it is exactly the shared vector wording for m=30."""
        bad = np.zeros(7)
        messages = set()
        for name, make in self.vector_entry_points(rect).items():
            with pytest.raises(ShapeError) as err:
                make(bad)
            messages.add(str(err.value))
        assert messages == {"b has shape (7,), expected (30,)"}

    def test_vector_paths_share_dtype_wording(self, rect):
        bad = np.zeros(30, dtype=np.complex128)
        messages = set()
        for name, make in self.vector_entry_points(rect).items():
            with pytest.raises(ShapeError, match="cannot be converted") as err:
                make(bad)
            messages.add(str(err.value))
        assert len(messages) == 1, messages

    def test_asyrk_matches_the_spd_table(self, rect):
        """AsyRK's block contract on an m-equation rectangle produces
        byte-identical wording to an m×m SPD system's — the table is
        keyed by row count, not by matrix shape."""
        m = rect.shape[0]
        spd = random_unit_diagonal_spd(
            m, nnz_per_row=3, offdiag_scale=0.4, seed=0
        )
        for bad in (np.zeros(7), np.zeros((7, 2)), np.zeros((m, 2, 2))):
            with pytest.raises(ShapeError) as rk_err:
                AsyRK(rect, bad, nproc=1)
            with pytest.raises(ShapeError) as gs_err:
                AsyRGS(spd, bad, nproc=2, engine="phased")
            assert str(rk_err.value) == str(gs_err.value)

    def test_asyrk_empty_block_wording(self, rect):
        with pytest.raises(ShapeError, match="at least one column"):
            AsyRK(rect, np.empty((rect.shape[0], 0)), nproc=1)


class TestNonContiguousBlocks:
    """Strided (non-contiguous) RHS blocks must be accepted and solved
    identically to their contiguous copies on every engine."""

    @staticmethod
    def strided_copy(B):
        wide = np.empty((B.shape[0], 2 * B.shape[1]))
        wide[:, ::2] = B
        view = wide[:, ::2]
        assert not view.flags["C_CONTIGUOUS"]
        return view

    @pytest.mark.parametrize("engine", ["phased", "general"])
    def test_simulated_engines(self, system, engine):
        A, B = system
        strided = self.strided_copy(B)
        res_s = AsyRGS(A, strided, nproc=2, engine=engine).run_sweeps(
            2, record_history=False
        )
        res_c = AsyRGS(
            A, np.ascontiguousarray(B), nproc=2, engine=engine
        ).run_sweeps(2, record_history=False)
        np.testing.assert_array_equal(res_s.x, res_c.x)

    def test_threaded_engine(self, system):
        A, B = system
        n = A.shape[0]
        strided = self.strided_copy(B)
        res_s = ThreadedAsyRGS(A, strided, nthreads=1).run(
            np.zeros(B.shape), 2 * n
        )
        res_c = ThreadedAsyRGS(A, B.copy(), nthreads=1).run(
            np.zeros(B.shape), 2 * n
        )
        np.testing.assert_array_equal(res_s.x, res_c.x)


class TestHelpers:
    def test_check_rhs_passthrough(self, system):
        A, B = system
        out = check_rhs(B, A.shape[0])
        assert out is B  # float64 input passes through untouched

    def test_check_rhs_converts_ints(self, system):
        A, _ = system
        out = check_rhs([1] * A.shape[0], A.shape[0])
        assert out.dtype == np.float64

    def test_check_rhs_empty_block(self, system):
        A, _ = system
        with pytest.raises(ShapeError, match="at least one column"):
            check_rhs(np.empty((A.shape[0], 0)), A.shape[0])

    def test_check_x0_shape_and_dtype(self):
        with pytest.raises(ShapeError, match="x0 has shape"):
            check_x0(np.zeros(3), (4,))
        with pytest.raises(ShapeError, match="cannot be converted"):
            check_x0(np.zeros(4, dtype=np.complex128), (4,))
