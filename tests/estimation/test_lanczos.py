"""Unit tests for Lanczos tridiagonalization and the Sturm eigensolver."""

import numpy as np
import pytest

from repro.estimation import lanczos, tridiagonal_eigenvalues
from repro.exceptions import ShapeError
from repro.sparse import CSRMatrix
from repro.workloads import laplacian_1d, laplacian_2d, random_unit_diagonal_spd


class TestTridiagonalEigenvalues:
    def test_diagonal_case(self):
        vals = tridiagonal_eigenvalues(np.array([3.0, 1.0, 2.0]), np.zeros(2))
        np.testing.assert_allclose(vals, [1.0, 2.0, 3.0], atol=1e-10)

    def test_matches_numpy(self):
        rng = np.random.default_rng(3)
        alphas = rng.normal(size=12)
        betas = rng.normal(size=11)
        T = np.diag(alphas) + np.diag(betas, 1) + np.diag(betas, -1)
        expected = np.linalg.eigvalsh(T)
        got = tridiagonal_eigenvalues(alphas, betas)
        np.testing.assert_allclose(got, expected, atol=1e-8)

    def test_known_laplacian_spectrum(self):
        """Eigenvalues of [−1, 2, −1] are 2 − 2cos(kπ/(n+1))."""
        n = 15
        alphas = np.full(n, 2.0)
        betas = np.full(n - 1, -1.0)
        got = tridiagonal_eigenvalues(alphas, betas)
        expected = 2.0 - 2.0 * np.cos(np.arange(1, n + 1) * np.pi / (n + 1))
        np.testing.assert_allclose(got, np.sort(expected), atol=1e-8)

    def test_single_element(self):
        np.testing.assert_allclose(
            tridiagonal_eigenvalues(np.array([4.2]), np.zeros(0)), [4.2], atol=1e-10
        )

    def test_empty(self):
        assert tridiagonal_eigenvalues(np.zeros(0), np.zeros(0)).size == 0

    def test_mismatched_betas_rejected(self):
        with pytest.raises(ShapeError):
            tridiagonal_eigenvalues(np.zeros(3), np.zeros(5))


class TestLanczos:
    def test_full_run_recovers_spectrum_edges(self):
        A = laplacian_1d(30)
        w = np.linalg.eigvalsh(A.to_dense())
        r = lanczos(A, steps=30, seed=1)
        assert r.ritz_max == pytest.approx(w[-1], rel=1e-6)
        assert r.ritz_min == pytest.approx(w[0], rel=1e-4)

    def test_partial_run_gives_inner_estimates(self):
        A = laplacian_2d(8, 8)
        w = np.linalg.eigvalsh(A.to_dense())
        r = lanczos(A, steps=25, seed=2)
        assert w[0] - 1e-8 <= r.ritz_min
        assert r.ritz_max <= w[-1] + 1e-8

    def test_breakdown_on_low_rank(self):
        """A rank-1-plus-identity-free matrix exhausts its Krylov space
        immediately."""
        A = CSRMatrix.from_diagonal(np.full(10, 3.0))
        r = lanczos(A, steps=10, seed=3)
        assert r.breakdown
        assert r.steps < 10
        assert r.ritz_max == pytest.approx(3.0, rel=1e-10)

    def test_steps_capped_at_dimension(self):
        A = random_unit_diagonal_spd(12, nnz_per_row=3, seed=4)
        r = lanczos(A, steps=100, seed=4)
        assert r.steps <= 12

    def test_deterministic(self):
        A = laplacian_2d(5, 5)
        r1 = lanczos(A, steps=10, seed=7)
        r2 = lanczos(A, steps=10, seed=7)
        np.testing.assert_array_equal(r1.alphas, r2.alphas)
        np.testing.assert_array_equal(r1.betas, r2.betas)

    def test_rectangular_rejected(self):
        with pytest.raises(ShapeError):
            lanczos(CSRMatrix.from_dense(np.ones((2, 3))))
