"""Unit tests for power iteration."""

import numpy as np
import pytest

from repro.estimation import power_iteration, shifted_power_iteration
from repro.exceptions import ConvergenceError, ShapeError
from repro.sparse import CSRMatrix
from repro.workloads import laplacian_1d, laplacian_2d


def eig_extremes(A):
    w = np.linalg.eigvalsh(A.to_dense())
    return float(w[0]), float(w[-1])


class TestPowerIteration:
    def test_diagonal_matrix_exact(self):
        A = CSRMatrix.from_diagonal([1.0, 5.0, 3.0])
        r = power_iteration(A, tol=1e-10)
        assert r.converged
        assert r.value == pytest.approx(5.0, rel=1e-8)

    def test_laplacian_lambda_max(self):
        A = laplacian_2d(7, 7)
        _, lam_max = eig_extremes(A)
        r = power_iteration(A, tol=1e-9, max_iterations=20000)
        assert r.value == pytest.approx(lam_max, rel=1e-6)

    def test_eigenvector_residual(self):
        A = laplacian_1d(30)
        r = power_iteration(A, tol=1e-9, max_iterations=50000)
        res = np.linalg.norm(A.matvec(r.vector) - r.value * r.vector)
        assert res <= 1e-9 * abs(r.value) * 1.1

    def test_stall_raises_when_requested(self):
        A = laplacian_2d(6, 6)
        with pytest.raises(ConvergenceError):
            power_iteration(A, tol=1e-14, max_iterations=2, raise_on_stall=True)

    def test_stall_returns_estimate_by_default(self):
        A = laplacian_2d(6, 6)
        r = power_iteration(A, tol=1e-14, max_iterations=2)
        assert not r.converged
        assert r.value > 0

    def test_rectangular_rejected(self):
        with pytest.raises(ShapeError):
            power_iteration(CSRMatrix.from_dense(np.ones((2, 3))))

    def test_zero_matrix(self):
        A = CSRMatrix.from_dense(np.zeros((4, 4)))
        r = power_iteration(A)
        assert r.value == pytest.approx(0.0, abs=1e-12)


class TestShiftedPower:
    def test_finds_lambda_min(self):
        A = laplacian_1d(25)
        lam_min, lam_max = eig_extremes(A)
        r = shifted_power_iteration(A, shift=lam_max * 1.01, tol=1e-9,
                                    max_iterations=50000)
        assert r.value == pytest.approx(lam_min, rel=1e-4)

    def test_diagonal_exact(self):
        A = CSRMatrix.from_diagonal([0.5, 2.0, 7.0])
        r = shifted_power_iteration(A, shift=8.0, tol=1e-12)
        assert r.value == pytest.approx(0.5, rel=1e-8)

    def test_rectangular_rejected(self):
        with pytest.raises(ShapeError):
            shifted_power_iteration(CSRMatrix.from_dense(np.ones((2, 3))), 1.0)
