"""Test package."""
