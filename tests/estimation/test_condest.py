"""Unit tests for condition-number estimation."""

import numpy as np
import pytest

from repro.estimation import condest, spectrum_estimate
from repro.exceptions import NotPositiveDefiniteError, ShapeError
from repro.sparse import CSRMatrix
from repro.workloads import laplacian_1d, laplacian_2d, social_media_problem


def true_kappa(A):
    w = np.linalg.eigvalsh(A.to_dense())
    return float(w[-1] / w[0])


class TestSpectrumEstimate:
    def test_laplacian_kappa(self):
        A = laplacian_1d(40)
        est = spectrum_estimate(A, steps=40, seed=1)
        assert est.kappa == pytest.approx(true_kappa(A), rel=0.05)

    def test_estimates_are_inner(self):
        A = laplacian_2d(7, 7)
        w = np.linalg.eigvalsh(A.to_dense())
        est = spectrum_estimate(A, steps=20, seed=2)
        assert est.lambda_min >= w[0] - 1e-8
        assert est.lambda_max <= w[-1] + 1e-8

    def test_kappa_requires_positive_min(self):
        from repro.estimation import SpectrumEstimate

        with pytest.raises(NotPositiveDefiniteError):
            _ = SpectrumEstimate(lambda_min=0.0, lambda_max=1.0).kappa

    def test_rectangular_rejected(self):
        with pytest.raises(ShapeError):
            spectrum_estimate(CSRMatrix.from_dense(np.ones((2, 3))))


class TestCondest:
    def test_refines_toward_true_kappa(self):
        A = laplacian_1d(50)
        est = condest(A, lanczos_steps=15, inverse_iterations=10, seed=3)
        assert est.kappa == pytest.approx(true_kappa(A), rel=0.05)

    def test_social_matrix_is_ill_conditioned(self):
        """The paper verifies its social matrix is highly ill-conditioned;
        our synthetic analogue must be too (relative to its size)."""
        prob = social_media_problem(n_terms=100, n_docs=500, n_labels=1,
                                    ridge=0.05, seed=6)
        est = condest(prob.G, lanczos_steps=40, inverse_iterations=4, seed=4)
        assert est.kappa > 1e3

    def test_diagonal_exact(self):
        A = CSRMatrix.from_diagonal(np.linspace(0.1, 10.0, 20))
        est = condest(A, lanczos_steps=20, inverse_iterations=6, seed=5)
        assert est.kappa == pytest.approx(100.0, rel=0.02)
