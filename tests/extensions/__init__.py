"""Test package."""
