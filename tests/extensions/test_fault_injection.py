"""Unit tests for dead-processor fault injection."""

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.extensions import (
    BlockPartitionedDirections,
    DeadProcessorDirections,
    balanced_partition,
    dead_processor_study,
)
from repro.rng import DirectionStream
from repro.workloads import random_unit_diagonal_spd

from ..conftest import manufactured_system


@pytest.fixture(scope="module")
def system():
    A = random_unit_diagonal_spd(48, nnz_per_row=5, offdiag_scale=0.7, seed=51)
    b, x_star = manufactured_system(A, seed=52)
    return A, b, x_star


class TestDeadProcessorDirections:
    def test_dead_slots_never_serve(self):
        base = BlockPartitionedDirections(balanced_partition(20, 4), seed=1)
        faulty = DeadProcessorDirections(base, nproc=4, dead={1, 3})
        dead_blocks = set(base.blocks[1].tolist()) | set(base.blocks[3].tolist())
        draws = faulty.directions(0, 400)
        assert not (set(draws.tolist()) & dead_blocks)

    def test_uniform_base_still_covers_everything(self):
        base = DirectionStream(15, seed=2)
        faulty = DeadProcessorDirections(base, nproc=4, dead={0})
        draws = faulty.directions(0, 3000)
        assert set(draws.tolist()) == set(range(15))

    def test_single_matches_batch(self):
        base = DirectionStream(10, seed=3)
        faulty = DeadProcessorDirections(base, nproc=3, dead={2})
        batch = faulty.directions(5, 20)
        singles = [faulty.direction(5 + k) for k in range(20)]
        np.testing.assert_array_equal(batch, singles)

    def test_survivor_positions_match_healthy_run(self):
        """A faulty run's draws are exactly the healthy run's draws at
        the survivors' stream positions."""
        base = DirectionStream(12, seed=4)
        faulty = DeadProcessorDirections(base, nproc=3, dead={1})
        # Survivors are processors 0 and 2: positions 0, 2, 3, 5, 6, 8, …
        expected_positions = [0, 2, 3, 5, 6, 8]
        for j, pos in enumerate(expected_positions):
            assert faulty.direction(j) == base.direction(pos)

    def test_validation(self):
        base = DirectionStream(10, seed=5)
        with pytest.raises(ModelError):
            DeadProcessorDirections(base, nproc=2, dead={0, 1})
        with pytest.raises(ModelError):
            DeadProcessorDirections(base, nproc=2, dead={5})
        with pytest.raises(ModelError):
            DeadProcessorDirections(base, nproc=0, dead=set())


class TestStudy:
    def test_randomization_survives_dead_processor(self, system):
        """The Section-2 robustness claim: with a dead processor,
        unrestricted randomization still converges; owner-computes
        stalls with starved coordinates."""
        A, b, _ = system
        study = dead_processor_study(
            A, b, nproc=8, dead=(0,), sweeps=300, tol=1e-6, seed=3
        )
        assert study.uniform_converged, study.summary()
        assert not study.owner_converged, study.summary()
        assert study.owner_residual > 100 * study.uniform_residual
        assert study.starved_coordinates == 6  # 48/8 coordinates owned by p0

    def test_multiple_dead_processors(self, system):
        A, b, _ = system
        study = dead_processor_study(
            A, b, nproc=8, dead=(0, 3), sweeps=300, tol=1e-6, seed=3
        )
        assert study.uniform_converged
        assert study.starved_coordinates == 12

    def test_summary_renders(self, system):
        A, b, _ = system
        study = dead_processor_study(A, b, nproc=4, dead=(1,), sweeps=50, seed=1)
        text = study.summary()
        assert "uniform randomization" in text
        assert "owner-computes" in text
