"""Unit tests for row-cost-driven probabilistic delays."""

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.extensions import RowCostDelay, effective_tau
from repro.execution import AsyncSimulator, AdversarialDelay
from repro.rng import DirectionStream
from repro.workloads import banded_spd, social_media_problem

from ..conftest import manufactured_system


@pytest.fixture(scope="module")
def skewed():
    """A matrix with heavily skewed row costs (the social Gram; short
    documents against a larger vocabulary maximize the max/mean gap)."""
    return social_media_problem(
        n_terms=250, n_docs=700, n_labels=1, mean_doc_len=4, seed=21
    ).G


class TestModel:
    def test_window_invariant(self, skewed):
        model = RowCostDelay(skewed, nproc=8, seed=1)
        for j in (0, 1, 5, 50, 500, 5000):
            model.validate_window(j, model.missed(j))

    def test_deterministic(self, skewed):
        m1 = RowCostDelay(skewed, nproc=8, seed=3)
        m2 = RowCostDelay(skewed, nproc=8, seed=3)
        for j in (10, 100, 999):
            np.testing.assert_array_equal(m1.missed(j), m2.missed(j))

    def test_single_processor_no_delay(self, skewed):
        model = RowCostDelay(skewed, nproc=1)
        assert model.tau == 0
        assert model.missed(100).size == 0

    def test_uniform_rows_give_tight_tau(self):
        """With C₂/C₁ ≈ 1 the hard bound collapses to ≈ P − 1: the
        reference scenario's τ = O(P)."""
        A = banded_spd(200, bandwidth=3, seed=2)
        model = RowCostDelay(A, nproc=8)
        assert model.tau <= 2 * (8 - 1)

    def test_skewed_rows_give_loose_tau(self, skewed):
        """Skewed rows blow up the worst case — the pessimism the paper's
        conclusions point at."""
        model = RowCostDelay(skewed, nproc=8)
        assert model.tau > 3 * (8 - 1)

    def test_tau_cap(self, skewed):
        model = RowCostDelay(skewed, nproc=8, tau_cap=10)
        assert model.tau == 10

    def test_validation(self, skewed):
        with pytest.raises(ModelError):
            RowCostDelay(skewed, nproc=0)


class TestEffectiveTau:
    def test_statistics_ordering(self, skewed):
        model = RowCostDelay(skewed, nproc=8, seed=5)
        stats = effective_tau(model, horizon=3000)
        assert stats["median"] <= stats["mean"] * 2
        assert stats["mean"] <= stats["q95"] + 1e-12
        assert stats["q95"] <= stats["max_observed"] + 1e-12
        assert stats["max_observed"] <= stats["hard_bound"]

    def test_typical_delay_far_below_bound(self, skewed):
        """The paper's point quantified: realized delays are much smaller
        than the worst case on skewed matrices."""
        model = RowCostDelay(skewed, nproc=8, seed=5)
        stats = effective_tau(model, horizon=3000)
        assert stats["median"] < 0.5 * stats["hard_bound"]

    def test_quantile_validation(self, skewed):
        model = RowCostDelay(skewed, nproc=4)
        with pytest.raises(ModelError):
            effective_tau(model, quantile=1.5)


class TestConvergenceUnderRowCostDelays:
    def test_converges_and_beats_worst_case(self, skewed):
        """At the same hard bound, realistic (cost-driven) delays hurt
        less than adversarial ones."""
        A = skewed
        n = A.shape[0]
        b, x_star = manufactured_system(A, seed=9)
        model = RowCostDelay(A, nproc=8, seed=2)
        real = AsyncSimulator(
            A, b, delay_model=model, directions=DirectionStream(n, seed=3)
        ).run(np.zeros(n), 30 * n)
        worst = AsyncSimulator(
            A, b, delay_model=AdversarialDelay(model.tau),
            directions=DirectionStream(n, seed=3),
        ).run(np.zeros(n), 30 * n)
        err_real = np.linalg.norm(real.x - x_star)
        err_worst = np.linalg.norm(worst.x - x_star)
        assert np.isfinite(err_real)
        assert err_real <= err_worst * 1.1
