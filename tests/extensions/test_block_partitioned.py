"""Unit tests for owner-computes (block-partitioned) randomization."""

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.extensions import (
    BlockPartitionedDirections,
    balanced_partition,
    contiguous_partition,
    owner_computes_solve,
)
from repro.workloads import random_unit_diagonal_spd

from ..conftest import manufactured_system


@pytest.fixture(scope="module")
def system():
    A = random_unit_diagonal_spd(48, nnz_per_row=5, offdiag_scale=0.7, seed=41)
    b, x_star = manufactured_system(A, seed=42)
    return A, b, x_star


class TestPartitions:
    def test_balanced_covers_everything(self):
        blocks = balanced_partition(10, 3)
        assert len(blocks) == 3
        np.testing.assert_array_equal(
            np.sort(np.concatenate(blocks)), np.arange(10)
        )

    def test_balanced_sizes_differ_by_at_most_one(self):
        blocks = balanced_partition(11, 4)
        sizes = [b.size for b in blocks]
        assert max(sizes) - min(sizes) <= 1

    def test_contiguous_blocks_are_intervals(self):
        blocks = contiguous_partition(10, 3)
        for b in blocks:
            np.testing.assert_array_equal(b, np.arange(b[0], b[-1] + 1))
        np.testing.assert_array_equal(
            np.sort(np.concatenate(blocks)), np.arange(10)
        )

    def test_invalid_args(self):
        with pytest.raises(ModelError):
            balanced_partition(3, 5)
        with pytest.raises(ModelError):
            contiguous_partition(3, 0)


class TestGraduatedReexports:
    """The owner-block partitions graduated to ``execution.sharded``
    when the sharded solver became their production consumer;
    ``extensions.block_partitioned`` keeps re-export shims for the
    pre-graduation import sites. Pin that the shim stays the same
    object (not a copy that could drift) and rejects identically."""

    def test_shim_exports_the_graduated_objects(self):
        import repro.execution.sharded as sharded
        import repro.extensions.block_partitioned as bp
        from repro.extensions import (
            balanced_partition as pkg_balanced,
            contiguous_partition as pkg_contiguous,
        )

        assert bp.balanced_partition is sharded.balanced_partition
        assert bp.contiguous_partition is sharded.contiguous_partition
        assert pkg_balanced is sharded.balanced_partition
        assert pkg_contiguous is sharded.contiguous_partition
        assert "balanced_partition" in bp.__all__
        assert "contiguous_partition" in bp.__all__

    @pytest.mark.parametrize(
        "name", ["balanced_partition", "contiguous_partition"]
    )
    def test_nproc_gt_n_rejected_identically_via_either_path(self, name):
        import repro.execution.sharded as sharded
        import repro.extensions.block_partitioned as bp

        messages = []
        for module in (bp, sharded):
            with pytest.raises(ModelError) as excinfo:
                getattr(module, name)(3, 5)
            messages.append(str(excinfo.value))
        assert messages[0] == messages[1]
        assert "need nproc <= n" in messages[0]


class TestDirections:
    def test_owner_draws_only_from_its_block(self):
        blocks = contiguous_partition(20, 4)
        d = BlockPartitionedDirections(blocks, seed=1)
        for j in range(200):
            owner = d.owner(j)
            assert d.direction(j) in set(blocks[owner].tolist())

    def test_batch_matches_singles(self):
        d = BlockPartitionedDirections(balanced_partition(15, 3), seed=2)
        batch = d.directions(7, 30)
        singles = [d.direction(7 + k) for k in range(30)]
        np.testing.assert_array_equal(batch, singles)

    def test_balanced_marginal_is_uniform(self):
        """With balanced blocks the overall coordinate distribution stays
        uniform — the Leventhal–Lewis requirement survives restriction."""
        n, P = 12, 4
        d = BlockPartitionedDirections(balanced_partition(n, P), seed=3)
        draws = d.directions(0, 60000)
        counts = np.bincount(draws, minlength=n)
        expected = 5000.0
        assert np.all(np.abs(counts - expected) < 6 * np.sqrt(expected))

    def test_partition_validation(self):
        with pytest.raises(ModelError):
            BlockPartitionedDirections([])
        with pytest.raises(ModelError):
            BlockPartitionedDirections([np.array([0, 1]), np.array([1, 2])])
        with pytest.raises(ModelError):
            BlockPartitionedDirections([np.array([0]), np.empty(0, dtype=np.int64)])

    def test_repr_mentions_sizes(self):
        d = BlockPartitionedDirections(balanced_partition(6, 2), seed=1)
        assert "sizes=[3, 3]" in repr(d)


class TestOwnerComputesSolve:
    @pytest.mark.parametrize("partition", ["balanced", "contiguous"])
    def test_converges(self, system, partition):
        A, b, x_star = system
        r = owner_computes_solve(
            A, b, nproc=4, partition=partition, tol=1e-8, max_sweeps=500
        )
        assert r.converged, f"{partition} partition failed to converge"
        np.testing.assert_allclose(r.x, x_star, atol=1e-6)

    def test_comparable_to_unrestricted(self, system):
        """Balanced owner-computes should cost roughly the same sweep
        count as unrestricted randomization (within 2x) — the finding the
        paper anticipated for distributed layouts."""
        from repro.core import AsyRGS

        A, b, _ = system
        restricted = owner_computes_solve(A, b, nproc=4, tol=1e-6, max_sweeps=600)
        unrestricted = AsyRGS(A, b, nproc=4).solve(tol=1e-6, max_sweeps=600)
        assert restricted.converged and unrestricted.converged
        assert restricted.sweeps < 2 * unrestricted.sweeps + 5

    def test_history_recorded(self, system):
        A, b, _ = system
        r = owner_computes_solve(A, b, nproc=2, tol=1e-20, max_sweeps=3)
        assert len(r.history) == 4
        assert not r.converged

    def test_unknown_partition(self, system):
        A, b, _ = system
        with pytest.raises(ModelError):
            owner_computes_solve(A, b, nproc=2, partition="striped")
