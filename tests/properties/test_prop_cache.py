"""Property-based tests: the warm-start cache can never change answers.

Two layers of the safety argument (``repro/serve/cache.py``):

* **Fingerprints never false-positive.** The exact-hit path keys on a
  SHA-1 over the shape and raw float64 bytes, so two right-hand sides
  share a fingerprint iff their bytes agree — an exact hit implies a
  bitwise-equal request. With ``similarity=0`` the near path is off and
  the cache can *only* serve bitwise repeats.
* **Warm == cold within the request tolerance.** A hit only seeds
  ``x0``; the solve still runs and judges its own convergence against
  the request's ``tol``, so a warm-started request must converge to
  the same answer a cold solve reaches — for exact repeats and for
  near hits seeded from a different (close) right-hand side alike.
  Checked against a real ``nproc=1`` process pool.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve import SolutionCache, SolverServer, rhs_fingerprint
from repro.workloads import random_unit_diagonal_spd

pytestmark = pytest.mark.serve

N = 12

finite = st.floats(
    allow_nan=False, allow_infinity=False, min_value=-1e6, max_value=1e6
)
vectors = st.lists(finite, min_size=1, max_size=16)


class TestFingerprint:
    @given(a=vectors, b=vectors)
    @settings(max_examples=150, deadline=None)
    def test_never_false_positive(self, a, b):
        """Fingerprints agree iff the float64 bytes agree — the SHA-1
        keying can alias only what is already bitwise identical."""
        va = np.asarray(a, dtype=np.float64)
        vb = np.asarray(b, dtype=np.float64)
        same_bytes = (
            va.shape == vb.shape and va.tobytes() == vb.tobytes()
        )
        assert (rhs_fingerprint(va) == rhs_fingerprint(vb)) == same_bytes

    @given(a=vectors)
    @settings(max_examples=60, deadline=None)
    def test_shape_is_part_of_the_key(self, a):
        """Same bytes, different shape → different fingerprint: a block
        request can never exact-hit a vector entry built from the same
        buffer."""
        v = np.asarray(a, dtype=np.float64)
        assert rhs_fingerprint(v) != rhs_fingerprint(v.reshape(-1, 1))

    @given(a=vectors, scale=st.floats(0.5, 2.0), seed=st.integers(0, 2**31))
    @settings(max_examples=100, deadline=None)
    def test_similarity_zero_only_exact_hits(self, a, scale, seed):
        """With near lookups disabled, any byte-level perturbation —
        however small — must miss; the stored vector itself must hit."""
        cache = SolutionCache(similarity=0.0)
        b = np.asarray(a, dtype=np.float64)
        cache.store("m", b, np.zeros_like(b))
        assert cache.lookup("m", b) is not None
        rng = np.random.default_rng(seed)
        perturbed = b * scale + rng.normal(scale=1e-9, size=b.shape)
        if perturbed.tobytes() != b.tobytes():
            assert cache.lookup("m", perturbed) is None
        stats = cache.stats()
        assert stats["hits_near"] == 0


@pytest.fixture(scope="module")
def system():
    A = random_unit_diagonal_spd(N, nnz_per_row=3, offdiag_scale=0.5, seed=5)
    return A


@pytest.fixture(scope="module")
def cached_server(system):
    server = SolverServer(
        system,
        nproc=1,
        capacity_k=2,
        max_wait=0.0,
        tol=1e-8,
        max_sweeps=400,
        cache=SolutionCache(similarity=0.05),
    )
    yield server
    server.close()


@pytest.fixture(scope="module")
def plain_server(system):
    server = SolverServer(
        system, nproc=1, capacity_k=2, max_wait=0.0, tol=1e-8, max_sweeps=400
    )
    yield server
    server.close()


@pytest.mark.multiprocess
class TestWarmEqualsCold:
    @given(seed=st.integers(0, 2**31))
    @settings(max_examples=6, deadline=None, derandomize=True)
    def test_exact_repeat_converges_to_the_cold_answer(
        self, seed, cached_server, plain_server
    ):
        rng = np.random.default_rng(seed)
        b = rng.normal(size=N)
        cold = plain_server.submit(b).result()
        first = cached_server.submit(b).result()
        warm = cached_server.submit(b).result()  # exact hit -> warm start
        assert cold.converged and first.converged and warm.converged
        np.testing.assert_allclose(warm.x, cold.x, rtol=0, atol=1e-6)
        # An exact repeat starts *at* the cached solution, so it retires
        # at least as fast as its own cold run.
        assert warm.sweeps <= first.sweeps

    @given(seed=st.integers(0, 2**31))
    @settings(max_examples=6, deadline=None, derandomize=True)
    def test_near_hit_converges_to_its_own_answer(
        self, seed, cached_server, plain_server
    ):
        """A warm start seeded from a *different* (close) rhs must still
        converge to the perturbed system's solution, not the seed's."""
        rng = np.random.default_rng(seed)
        b = rng.normal(size=N)
        cached_server.submit(b).result()  # land the entry
        perturbed = b * (1.0 + 1e-3)  # relative distance 1e-3 << 0.05
        cold = plain_server.submit(perturbed).result()
        warm = cached_server.submit(perturbed).result()
        assert cold.converged and warm.converged
        np.testing.assert_allclose(warm.x, cold.x, rtol=0, atol=1e-6)

    def test_the_suite_really_warm_started(self, cached_server):
        """Guard against vacuity: the properties above must have driven
        both hit paths, and every hit warm-started a served request."""
        stats = cached_server.cache_stats()
        assert stats["hits_exact"] > 0
        assert stats["hits_near"] > 0
        assert stats["warm_requests"] == (
            stats["hits_exact"] + stats["hits_near"]
        )
