"""Property-based tests for the least-squares solvers."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import column_squared_norms, normal_equations, rcd_least_squares
from repro.workloads import random_least_squares


class TestLeastSquaresProperties:
    @given(st.integers(0, 2**31), st.floats(0.0, 0.5))
    @settings(max_examples=20, deadline=None)
    def test_rcd_converges_to_normal_solution(self, seed, noise):
        """For any generated instance, the RCD fixed point is the
        normal-equations minimizer (consistent or not)."""
        prob = random_least_squares(40, 12, nnz_per_row=4, noise_scale=noise,
                                    seed=seed % 1000)
        x_ls = np.linalg.lstsq(prob.A.to_dense(), prob.b, rcond=None)[0]
        r = rcd_least_squares(prob.A, prob.b, sweeps=400, record_history=False)
        np.testing.assert_allclose(r.x, x_ls, atol=5e-4)

    @given(st.integers(0, 2**31))
    @settings(max_examples=20, deadline=None)
    def test_normal_equations_consistency(self, seed):
        """The explicitly formed normal equations always agree with the
        dense oracle, and their solution minimizes the residual."""
        prob = random_least_squares(30, 10, nnz_per_row=3, noise_scale=0.3,
                                    seed=seed % 1000)
        N, c = normal_equations(prob.A, prob.b)
        d = prob.A.to_dense()
        np.testing.assert_allclose(N.to_dense(), d.T @ d, atol=1e-10)
        np.testing.assert_allclose(c, d.T @ prob.b, atol=1e-10)
        x = np.linalg.solve(N.to_dense(), c)
        # Perturbing the minimizer must not reduce the residual.
        base = np.linalg.norm(prob.b - d @ x)
        for k in range(3):
            delta = np.zeros(10)
            delta[k] = 1e-3
            assert np.linalg.norm(prob.b - d @ (x + delta)) >= base - 1e-12

    @given(st.integers(0, 2**31))
    @settings(max_examples=25, deadline=None)
    def test_column_norms_nonnegative_and_exact(self, seed):
        prob = random_least_squares(25, 8, nnz_per_row=3, seed=seed % 1000)
        w = column_squared_norms(prob.A)
        d = prob.A.to_dense()
        np.testing.assert_allclose(w, (d * d).sum(axis=0), atol=1e-12)
        assert np.all(w >= 0)

    @given(st.integers(0, 2**31), st.floats(0.3, 1.2))
    @settings(max_examples=15, deadline=None)
    def test_residual_monotone_in_expectation_proxy(self, seed, beta):
        """Per-sweep residual history is overall decreasing for admissible
        steps on consistent systems."""
        prob = random_least_squares(30, 10, nnz_per_row=3, seed=seed % 1000)
        r = rcd_least_squares(prob.A, prob.b, sweeps=20, beta=beta)
        assert r.history.values[-1] < r.history.values[0]
