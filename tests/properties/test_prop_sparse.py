"""Property-based tests (hypothesis) for the sparse substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.sparse import COOBuilder, CSRMatrix, add, gram, matmul

finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False, width=64
)


@st.composite
def dense_matrices(draw, max_dim=8):
    nrows = draw(st.integers(1, max_dim))
    ncols = draw(st.integers(1, max_dim))
    return draw(
        arrays(np.float64, (nrows, ncols), elements=finite)
    )


@st.composite
def matched_pairs(draw, max_dim=6):
    n = draw(st.integers(1, max_dim))
    m = draw(st.integers(1, max_dim))
    a = draw(arrays(np.float64, (n, m), elements=finite))
    b = draw(arrays(np.float64, (n, m), elements=finite))
    return a, b


class TestRoundTrips:
    @given(dense_matrices())
    @settings(max_examples=60, deadline=None)
    def test_dense_roundtrip(self, d):
        np.testing.assert_array_equal(CSRMatrix.from_dense(d).to_dense(), d)

    @given(dense_matrices())
    @settings(max_examples=60, deadline=None)
    def test_transpose_involution(self, d):
        A = CSRMatrix.from_dense(d)
        np.testing.assert_array_equal(A.T.T.to_dense(), d)

    @given(dense_matrices())
    @settings(max_examples=60, deadline=None)
    def test_transpose_matches_numpy(self, d):
        np.testing.assert_array_equal(
            CSRMatrix.from_dense(d).T.to_dense(), d.T
        )

    @given(dense_matrices())
    @settings(max_examples=40, deadline=None)
    def test_structural_invariants_hold(self, d):
        A = CSRMatrix.from_dense(d)
        A._validate()
        A.T._validate()


class TestLinearity:
    @given(dense_matrices(), st.data())
    @settings(max_examples=60, deadline=None)
    def test_matvec_linearity(self, d, data):
        A = CSRMatrix.from_dense(d)
        x = data.draw(arrays(np.float64, (d.shape[1],), elements=finite))
        y = data.draw(arrays(np.float64, (d.shape[1],), elements=finite))
        alpha = data.draw(st.floats(-10, 10, allow_nan=False))
        left = A.matvec(alpha * x + y)
        right = alpha * A.matvec(x) + A.matvec(y)
        np.testing.assert_allclose(left, right, rtol=1e-9, atol=1e-6)

    @given(dense_matrices())
    @settings(max_examples=60, deadline=None)
    def test_matvec_matches_dense(self, d):
        A = CSRMatrix.from_dense(d)
        x = np.linspace(-1, 1, d.shape[1])
        np.testing.assert_allclose(A.matvec(x), d @ x, rtol=1e-9, atol=1e-6)

    @given(dense_matrices())
    @settings(max_examples=40, deadline=None)
    def test_rmatvec_is_transpose_matvec(self, d):
        A = CSRMatrix.from_dense(d)
        y = np.linspace(-1, 1, d.shape[0])
        np.testing.assert_allclose(
            A.rmatvec(y), A.T.matvec(y), rtol=1e-9, atol=1e-6
        )


class TestAlgebra:
    @given(matched_pairs())
    @settings(max_examples=50, deadline=None)
    def test_add_commutes(self, pair):
        a, b = pair
        A, B = CSRMatrix.from_dense(a), CSRMatrix.from_dense(b)
        np.testing.assert_allclose(
            add(A, B).to_dense(), add(B, A).to_dense(), atol=1e-9
        )

    @given(matched_pairs())
    @settings(max_examples=50, deadline=None)
    def test_add_matches_dense(self, pair):
        a, b = pair
        np.testing.assert_allclose(
            add(CSRMatrix.from_dense(a), CSRMatrix.from_dense(b)).to_dense(),
            a + b,
            rtol=1e-9,
            atol=1e-6,
        )

    @given(dense_matrices(max_dim=6))
    @settings(max_examples=40, deadline=None)
    def test_gram_psd(self, d):
        """AᵀA is always symmetric positive semidefinite."""
        G = gram(CSRMatrix.from_dense(d))
        assert G.is_symmetric(tol=1e-6 * max(1.0, np.abs(d).max() ** 2))
        w = np.linalg.eigvalsh(G.to_dense())
        assert w.min() >= -1e-6 * max(1.0, np.abs(w).max())

    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_matmul_associates_with_dense(self, data):
        k = data.draw(st.integers(1, 5))
        m = data.draw(st.integers(1, 5))
        n = data.draw(st.integers(1, 5))
        a = data.draw(arrays(np.float64, (k, m), elements=finite))
        b = data.draw(arrays(np.float64, (m, n), elements=finite))
        C = matmul(CSRMatrix.from_dense(a), CSRMatrix.from_dense(b))
        np.testing.assert_allclose(
            C.to_dense(), a @ b, rtol=1e-9, atol=1e-3
        )


class TestBuilder:
    @given(
        st.lists(
            st.tuples(st.integers(0, 5), st.integers(0, 5), finite),
            max_size=60,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_order_invariance(self, triplets):
        """The assembled matrix must not depend on insertion order."""
        b1 = COOBuilder(6, 6)
        b2 = COOBuilder(6, 6)
        for r, c, v in triplets:
            b1.add(r, c, v)
        for r, c, v in reversed(triplets):
            b2.add(r, c, v)
        np.testing.assert_allclose(
            b1.to_csr().to_dense(), b2.to_csr().to_dense(), rtol=1e-12, atol=1e-9
        )

    @given(
        st.lists(
            st.tuples(st.integers(0, 4), st.integers(0, 4), finite),
            max_size=40,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_duplicates_sum(self, triplets):
        builder = COOBuilder(5, 5)
        expected = np.zeros((5, 5))
        for r, c, v in triplets:
            builder.add(r, c, v)
            expected[r, c] += v
        np.testing.assert_allclose(
            builder.to_csr().to_dense(), expected, rtol=1e-12, atol=1e-9
        )
