"""Test package."""
