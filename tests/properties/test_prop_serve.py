"""Property-based tests: capacity-k pool reuse is deterministic.

For *random sequences* of request widths ``k ≤ capacity_k`` against one
capacity-k pool, two properties must hold no matter the order:

* the pool is never respawned — the worker PIDs observed before the
  sequence are the PIDs after it, and ``spawn_count`` stays 1;
* each request's iterate is a pure function of its own payload: it
  equals the same-seed one-shot run of a fresh solver (and repeated
  submissions of the same width are identical bit for bit across the
  sequence — pool reuse leaks no state between requests).

``nproc=1`` makes the execution deterministic, so "equals" is exact for
single-RHS requests (the capacity pool's lone-active-column gather is
the same scalar arithmetic as a k=1 layout) and exact-in-practice for
blocks; the assertion is bitwise against a cached first occurrence and
tight-tolerance against the one-shot reference.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.execution import ProcessAsyRGS
from repro.rng import DirectionStream
from repro.workloads import random_unit_diagonal_spd

pytestmark = pytest.mark.serve

CAPACITY = 4
SOLVE = dict(tol=1e-8, max_sweeps=300, sync_every_sweeps=10)


@pytest.fixture(scope="module")
def setting():
    A = random_unit_diagonal_spd(24, nnz_per_row=3, offdiag_scale=0.5, seed=21)
    n = A.shape[0]
    rng = DirectionStream(n, seed=77)
    X_star = np.column_stack(
        [
            rng.directions(j * n, n).astype(np.float64) / n - 0.5
            for j in range(CAPACITY)
        ]
    )
    return A, A.matmat(X_star)


@pytest.fixture(scope="module")
def pool(setting):
    A, B = setting
    solver = ProcessAsyRGS(
        A,
        np.zeros((A.shape[0], CAPACITY)),
        nproc=1,
        capacity_k=CAPACITY,
        directions=DirectionStream(A.shape[0], seed=0),
    )
    solver.open()
    yield solver
    solver.close()


@pytest.fixture(scope="module")
def oneshot_reference(setting):
    """Same-seed one-shot runs, one per request width (computed once)."""

    A, B = setting
    refs = {}

    def get(k: int):
        if k not in refs:
            b = B[:, 0] if k == 1 else B[:, :k]
            refs[k] = ProcessAsyRGS(
                A, b, nproc=1, directions=DirectionStream(A.shape[0], seed=0)
            ).solve(**SOLVE)
        return refs[k]

    return get


class TestCapacityPoolDeterminism:
    @given(ks=st.lists(st.integers(1, CAPACITY), min_size=1, max_size=6))
    @settings(max_examples=10, deadline=None, derandomize=True)
    def test_random_k_sequences_reuse_and_reproduce(
        self, ks, setting, pool, oneshot_reference
    ):
        A, B = setting
        pids = pool.worker_pids()
        assert len(pids) == 1
        spawns_before = pool.spawn_count
        seen: dict = {}
        for k in ks:
            b = B[:, 0] if k == 1 else B[:, :k]
            res = pool.solve(**SOLVE, b=b)
            assert res.converged
            assert res.x.shape == b.shape
            # Determinism across pool reuse: identical payload, identical
            # bytes, regardless of what ran in between.
            if k in seen:
                np.testing.assert_array_equal(res.x, seen[k].x)
                assert res.iterations == seen[k].iterations
                np.testing.assert_array_equal(
                    res.column_sweeps, seen[k].column_sweeps
                )
            else:
                seen[k] = res
            # And it answers like a fresh same-seed one-shot solver.
            ref = oneshot_reference(k)
            np.testing.assert_allclose(res.x, ref.x, rtol=1e-9, atol=1e-12)
            assert res.sweeps_done == ref.sweeps_done
        # Worker PIDs never change across requests; zero respawns.
        assert pool.worker_pids() == pids
        assert pool.spawn_count == spawns_before

    @given(
        ks=st.lists(st.integers(1, CAPACITY), min_size=2, max_size=4),
        scale=st.floats(0.5, 2.0),
    )
    @settings(max_examples=10, deadline=None, derandomize=True)
    def test_scaled_rhs_traffic_never_respawns(self, ks, scale, setting, pool):
        """Width *and* payload vary per request; the pool still serves
        everything with zero respawns and exact linearity (scaling b
        scales the deterministic iterate)."""
        A, B = setting
        spawns_before = pool.spawn_count
        pids = pool.worker_pids()
        for k in ks:
            b = (B[:, 0] if k == 1 else B[:, :k]) * scale
            res = pool.solve(**SOLVE, b=b)
            base = pool.solve(**SOLVE, b=(B[:, 0] if k == 1 else B[:, :k]))
            assert res.converged
            np.testing.assert_allclose(
                res.x, base.x * scale, rtol=1e-9, atol=1e-12
            )
        assert pool.spawn_count == spawns_before
        assert pool.worker_pids() == pids
