"""Property-based tests for the theory module's analytic identities."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    chi,
    epoch_length,
    nu_tau,
    omega_tau,
    psi,
    synchronous_bound,
    theorem2_epoch_bound,
    theorem2_free_bound,
    theorem4_epoch_bound,
)

lam_pairs = st.tuples(
    st.floats(0.01, 0.9), st.floats(1.0, 1.9)
)  # (lambda_min, lambda_max) with min < max guaranteed below


class TestRateFactorProperties:
    @given(st.floats(0.01, 1.0), st.floats(0.0, 0.05), st.integers(0, 100))
    @settings(max_examples=150, deadline=None)
    def test_nu_monotone_decreasing_in_tau(self, beta, rho, tau):
        assert nu_tau(beta, rho, tau + 1) <= nu_tau(beta, rho, tau) + 1e-15

    @given(st.floats(0.01, 0.99), st.floats(0.0, 0.05), st.integers(0, 60))
    @settings(max_examples=150, deadline=None)
    def test_omega_monotone_decreasing_in_tau(self, beta, rho2, tau):
        assert omega_tau(beta, rho2, tau + 1) <= omega_tau(beta, rho2, tau) + 1e-15

    @given(st.floats(0.0, 0.05), st.integers(0, 100))
    @settings(max_examples=100, deadline=None)
    def test_nu_concave_peak_inside_admissible_range(self, rho, tau):
        """ν_τ is a downward parabola in β: the optimum is interior and
        ν vanishes at 0 and at the admissible sup 2/(1+2ρτ)."""
        sup = 2.0 / (1.0 + 2.0 * rho * tau)
        assert abs(nu_tau(0.0, rho, tau)) < 1e-12
        assert abs(nu_tau(sup, rho, tau)) < 1e-9
        mid = sup / 2.0
        assert nu_tau(mid, rho, tau) > 0

    @given(
        st.floats(0.05, 1.0),
        st.floats(0.0, 0.03),
        st.integers(0, 30),
        lam_pairs,
    )
    @settings(max_examples=100, deadline=None)
    def test_epoch_bound_in_unit_interval(self, beta, rho, tau, lams):
        lam_min, lam_max = lams
        lam_max = max(lam_max, lam_min + 0.01)
        value = float(theorem2_epoch_bound(1, beta, rho, tau, lam_min, lam_max))
        # One epoch factor: 1 − ν/2κ ∈ (0, 1] whenever ν ≥ 0; may exceed 1
        # only when the step is inadmissible (ν < 0).
        if nu_tau(beta, rho, tau) >= 0:
            assert 0.0 < value <= 1.0 + 1e-12

    @given(
        st.floats(0.05, 0.45),
        st.floats(0.001, 0.02),
        st.integers(0, 10),
        lam_pairs,
    )
    @settings(max_examples=100, deadline=None)
    def test_theorem4_epoch_bound_bounded(self, beta, rho2, tau, lams):
        lam_min, lam_max = lams
        lam_max = max(lam_max, lam_min + 0.01)
        value = float(theorem4_epoch_bound(1, beta, rho2, tau, lam_min, lam_max))
        if omega_tau(beta, rho2, tau) >= 0:
            assert 0.0 < value <= 1.0 + 1e-12


class TestBoundCurveProperties:
    @given(st.floats(0.05, 1.9), st.floats(0.01, 0.9), st.integers(2, 5000))
    @settings(max_examples=150, deadline=None)
    def test_synchronous_bound_monotone_and_positive(self, beta, lam_min, n):
        lam_min = min(lam_min, n / 2.0)
        curve = synchronous_bound(np.arange(30), beta, lam_min, n)
        assert np.all(curve > 0)
        assert np.all(np.diff(curve) <= 1e-15)

    @given(
        st.floats(0.2, 1.0),
        st.floats(0.0001, 0.01),
        st.integers(1, 12),
        st.integers(100, 2000),
    )
    @settings(max_examples=100, deadline=None)
    def test_free_bound_dominates_epoch_bound(self, beta, rho, tau, n):
        """Never synchronizing is never better than the epoch scheme in
        the bounds (the trade-off Theorem 2's discussion prices)."""
        lam_min, lam_max = 0.2, 1.8
        for r in (1, 3, 7):
            free = float(theorem2_free_bound(r, beta, rho, tau, lam_min, lam_max, n))
            epoch = float(theorem2_epoch_bound(r, beta, rho, tau, lam_min, lam_max))
            assert free >= epoch - 1e-12

    @given(st.floats(0.05, 1.0), st.floats(0.0001, 0.01), st.integers(1, 15))
    @settings(max_examples=100, deadline=None)
    def test_chi_psi_relation(self, beta, rho, tau):
        """ψ carries one extra factor of τ relative to χ at matched
        coefficients."""
        n, lam = 500, 1.5
        c = chi(beta, rho, tau, lam, n)
        p = psi(beta, rho, tau, lam, n)
        assert p == (tau * c) or abs(p - tau * c) < 1e-12 * max(1.0, abs(p))

    @given(st.floats(0.01, 10.0), st.integers(20, 10**6))
    @settings(max_examples=100, deadline=None)
    def test_epoch_length_bounds(self, lam, n):
        lam = min(lam, n * 0.5)
        T0 = epoch_length(lam, n)
        # T0 is the smallest m with (1-lam/n)^m <= 1/2.
        decay = 1.0 - lam / n
        assert decay**T0 <= 0.5 + 1e-12
        if T0 > 1:
            assert decay ** (T0 - 1) > 0.5 - 1e-12
