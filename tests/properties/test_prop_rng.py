"""Property-based tests for the counter-based RNG substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rng import CounterRNG, DirectionStream


class TestCounterRNGProperties:
    @given(st.integers(0, 2**64), st.integers(0, 500), st.integers(0, 64))
    @settings(max_examples=80, deadline=None)
    def test_random_access_equals_streaming(self, seed, start, count):
        """Any (start, count) window equals the same slice of a long read:
        the defining counter-based property."""
        rng = CounterRNG(seed)
        window = rng.uint32(start, count)
        long = rng.uint32(0, start + count)
        np.testing.assert_array_equal(window, long[start : start + count])

    @given(st.integers(0, 2**32), st.integers(1, 1000))
    @settings(max_examples=50, deadline=None)
    def test_randint_bounds(self, seed, n):
        v = CounterRNG(seed).randint(0, 200, n)
        assert v.min() >= 0
        assert v.max() < n

    @given(st.integers(0, 2**32))
    @settings(max_examples=30, deadline=None)
    def test_uniform_range(self, seed):
        u = CounterRNG(seed).uniform(0, 256)
        assert np.all((0.0 <= u) & (u < 1.0))

    @given(st.integers(0, 2**32), st.integers(0, 2**16), st.integers(0, 2**16))
    @settings(max_examples=50, deadline=None)
    def test_distinct_streams_differ(self, seed, s1, s2):
        if s1 == s2:
            return
        a = CounterRNG(seed, stream=s1).uint32(0, 8)
        b = CounterRNG(seed, stream=s2).uint32(0, 8)
        assert not np.array_equal(a, b)

    @given(st.integers(0, 2**32), st.integers(0, 40))
    @settings(max_examples=40, deadline=None)
    def test_permutation_property(self, seed, n):
        p = CounterRNG(seed).permutation(0, n)
        np.testing.assert_array_equal(np.sort(p), np.arange(n))


class TestDirectionStreamProperties:
    @given(
        st.integers(1, 500),
        st.integers(0, 2**32),
        st.integers(0, 1000),
        st.integers(0, 64),
    )
    @settings(max_examples=80, deadline=None)
    def test_window_consistency(self, n, seed, start, count):
        s = DirectionStream(n, seed=seed)
        window = s.directions(start, count)
        assert np.all((0 <= window) & (window < n))
        full = s.directions(0, start + count)
        np.testing.assert_array_equal(window, full[start : start + count])

    @given(st.integers(2, 64), st.integers(0, 2**32), st.integers(1, 8))
    @settings(max_examples=50, deadline=None)
    def test_processor_union_property(self, n, seed, nproc):
        """Round-robin views always reassemble into the global stream."""
        from repro.rng import interleave_counts

        total = 4 * nproc + 3
        s = DirectionStream(n, seed=seed)
        global_seq = s.directions(0, total)
        counts = interleave_counts(total, nproc)
        rebuilt = np.empty(total, dtype=np.int64)
        for p in range(nproc):
            rebuilt[p::nproc] = s.for_processor(p, nproc).directions(0, int(counts[p]))
        np.testing.assert_array_equal(rebuilt, global_seq)
