"""Property-based tests for solver and execution-model invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import nu_tau, omega_tau, optimal_beta_consistent, randomized_gauss_seidel
from repro.execution import (
    AsyncSimulator,
    FixedDelay,
    InconsistentUniform,
    UniformDelay,
    ZeroDelay,
)
from repro.rng import DirectionStream
from repro.workloads import random_unit_diagonal_spd


def make_system(seed):
    A = random_unit_diagonal_spd(20, nnz_per_row=4, offdiag_scale=0.6, seed=seed)
    x_star = np.linspace(-1, 1, 20)
    return A, A.matvec(x_star), x_star


class TestSimulatorInvariants:
    @given(st.integers(0, 100), st.integers(0, 2**31))
    @settings(max_examples=25, deadline=None)
    def test_zero_delay_equals_rgs_for_any_key(self, seed_sys, seed_dir):
        """The anchor identity must hold for every direction key."""
        A, b, _ = make_system(seed_sys % 7)
        n = A.shape[0]
        ref = randomized_gauss_seidel(
            A, b, sweeps=2, directions=DirectionStream(n, seed=seed_dir),
            record_history=False,
        )
        sim = AsyncSimulator(
            A, b, delay_model=ZeroDelay(), directions=DirectionStream(n, seed=seed_dir)
        )
        out = sim.run(np.zeros(n), 2 * n)
        np.testing.assert_array_equal(out.x, ref.x)

    @given(st.integers(0, 2**31), st.integers(0, 10))
    @settings(max_examples=20, deadline=None)
    def test_bounded_delay_bounded_iterate(self, seed_dir, tau):
        """With β ≤ 1 and bounded delays on a well-conditioned system the
        iterates stay bounded over a short horizon (no blow-up)."""
        A, b, x_star = make_system(3)
        n = A.shape[0]
        sim = AsyncSimulator(
            A, b,
            delay_model=UniformDelay(tau, seed=seed_dir),
            directions=DirectionStream(n, seed=seed_dir),
            beta=0.9,
        )
        out = sim.run(np.zeros(n), 10 * n)
        assert np.isfinite(out.x).all()
        assert np.abs(out.x).max() < 10 * (np.abs(x_star).max() + 1)

    @given(st.integers(0, 2**31))
    @settings(max_examples=15, deadline=None)
    def test_error_decreases_over_long_horizon(self, seed):
        A, b, x_star = make_system(1)
        n = A.shape[0]
        sim = AsyncSimulator(
            A, b,
            delay_model=FixedDelay(3),
            directions=DirectionStream(n, seed=seed),
        )
        from repro.core import a_norm_error

        e0 = a_norm_error(A, np.zeros(n), x_star)
        out = sim.run(np.zeros(n), 30 * n)
        e1 = a_norm_error(A, out.x, x_star)
        assert e1 < 0.5 * e0

    @given(st.integers(0, 2**31), st.floats(0.0, 1.0))
    @settings(max_examples=20, deadline=None)
    def test_inconsistent_reads_finite(self, seed, miss_prob):
        A, b, _ = make_system(2)
        n = A.shape[0]
        sim = AsyncSimulator(
            A, b,
            delay_model=InconsistentUniform(4, miss_prob=miss_prob, seed=seed),
            directions=DirectionStream(n, seed=seed),
            beta=0.5,
        )
        out = sim.run(np.zeros(n), 5 * n)
        assert np.isfinite(out.x).all()


class TestTheoryIdentities:
    @given(
        st.floats(0.0, 0.2),
        st.integers(0, 200),
    )
    @settings(max_examples=100, deadline=None)
    def test_optimal_beta_value_identity(self, rho, tau):
        """ν_τ(β̃) = β̃ = 1/(1+2ρτ) — the closed form of Section 6."""
        b = optimal_beta_consistent(rho, tau)
        assert abs(nu_tau(b, rho, tau) - b) < 1e-12

    @given(
        st.floats(0.001, 1.0),
        st.floats(0.0, 0.1),
        st.integers(0, 50),
    )
    @settings(max_examples=100, deadline=None)
    def test_nu_bounded_by_synchronous_factor(self, beta, rho, tau):
        """Asynchrony never improves the rate factor: ν_τ(β) ≤ β(2−β)."""
        assert nu_tau(beta, rho, tau) <= beta * (2 - beta) + 1e-12

    @given(
        st.floats(0.001, 0.999),
        st.floats(0.0, 0.1),
        st.integers(0, 50),
    )
    @settings(max_examples=100, deadline=None)
    def test_omega_bounded_by_consistent_factor(self, beta, rho, tau):
        """ω uses ρ₂ ≤ ρ but pays τ²: at ρ₂ = ρ it is never better than
        the synchronous factor either."""
        assert omega_tau(beta, rho, tau) <= beta * (2 - beta) + 1e-12

    @given(st.floats(0.0, 0.5), st.integers(0, 100))
    @settings(max_examples=100, deadline=None)
    def test_optimal_betas_in_range(self, rho, tau):
        from repro.core import optimal_beta_inconsistent

        assert 0 < optimal_beta_consistent(rho, tau) <= 1.0
        assert 0 < optimal_beta_inconsistent(rho, tau) <= 0.5
