"""Property-based tests for the execution substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.execution import (
    AdversarialDelay,
    FixedDelay,
    InconsistentUniform,
    PhasedSimulator,
    ProcessorPhaseDelay,
    UniformDelay,
)
from repro.rng import DirectionStream
from repro.workloads import random_unit_diagonal_spd


def make_system(seed):
    A = random_unit_diagonal_spd(16, nnz_per_row=3, offdiag_scale=0.6, seed=seed)
    x_star = np.linspace(-1, 1, 16)
    return A, A.matvec(x_star)


class TestDelayModelProperties:
    @given(
        st.sampled_from(["fixed", "uniform", "adversarial", "phase", "inconsistent"]),
        st.integers(0, 40),
        st.integers(0, 2**31),
        st.integers(0, 3000),
    )
    @settings(max_examples=150, deadline=None)
    def test_window_invariant_everywhere(self, kind, tau, seed, j):
        """Eq. (6)/(7): every model, every index, every seed."""
        if kind == "fixed":
            model = FixedDelay(tau)
        elif kind == "uniform":
            model = UniformDelay(tau, seed=seed)
        elif kind == "adversarial":
            model = AdversarialDelay(tau)
        elif kind == "phase":
            model = ProcessorPhaseDelay(tau + 1, seed=seed)
        else:
            model = InconsistentUniform(tau, miss_prob=0.5, seed=seed)
        missed = model.missed(j)
        model.validate_window(j, missed)
        # Sorted, unique, and within [window_start, j).
        assert np.all(np.diff(missed) > 0) or missed.size <= 1
        if missed.size:
            assert missed.min() >= model.window_start(j)
            assert missed.max() < j

    @given(st.integers(0, 30), st.integers(0, 2**31))
    @settings(max_examples=60, deadline=None)
    def test_consistent_models_emit_suffixes(self, tau, seed):
        model = UniformDelay(tau, seed=seed)
        for j in (1, 10, 200):
            missed = model.missed(j)
            if missed.size:
                np.testing.assert_array_equal(
                    missed, np.arange(j - missed.size, j)
                )


class TestPhasedSimulatorProperties:
    @given(st.integers(1, 12), st.integers(0, 2**31))
    @settings(max_examples=30, deadline=None)
    def test_total_row_nnz_independent_of_round_size(self, nproc, seed):
        """The work performed depends only on the direction sequence,
        never on how rounds are cut."""
        A, b = make_system(3)
        m = 64
        runs = []
        for p in (1, nproc):
            sim = PhasedSimulator(
                A, b, nproc=p, directions=DirectionStream(16, seed=seed)
            )
            runs.append(sim.run(np.zeros(16), m).total_row_nnz)
        assert runs[0] == runs[1]

    @given(st.integers(1, 12), st.integers(0, 2**31))
    @settings(max_examples=30, deadline=None)
    def test_deterministic_replay(self, nproc, seed):
        A, b = make_system(5)
        xs = []
        for _ in range(2):
            sim = PhasedSimulator(
                A, b, nproc=nproc, directions=DirectionStream(16, seed=seed)
            )
            xs.append(sim.run(np.zeros(16), 80).x)
        np.testing.assert_array_equal(xs[0], xs[1])

    @given(st.integers(2, 10))
    @settings(max_examples=20, deadline=None)
    def test_round_splitting_preserves_state_evolution(self, nproc):
        """Running m then m more updates equals running 2m updates when m
        is a multiple of the round size (round boundaries align)."""
        A, b = make_system(7)
        m = 4 * nproc
        sim_once = PhasedSimulator(
            A, b, nproc=nproc, directions=DirectionStream(16, seed=11)
        )
        whole = sim_once.run(np.zeros(16), 2 * m).x
        sim_split = PhasedSimulator(
            A, b, nproc=nproc, directions=DirectionStream(16, seed=11)
        )
        part = sim_split.run(np.zeros(16), m)
        final = sim_split.run(part.x, m, start_iteration=m)
        np.testing.assert_allclose(final.x, whole, rtol=1e-12, atol=1e-14)

    @given(st.integers(0, 2**31), st.floats(0.1, 1.5))
    @settings(max_examples=25, deadline=None)
    def test_iterate_stays_finite(self, seed, beta):
        A, b = make_system(9)
        sim = PhasedSimulator(
            A, b, nproc=4, beta=beta, directions=DirectionStream(16, seed=seed)
        )
        out = sim.run(np.zeros(16), 160)
        assert np.isfinite(out.x).all()
