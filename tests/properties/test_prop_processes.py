"""Property-based tests: real-process runs vs the paper's theory.

For random unit-diagonal SPD systems, the final relative residual after
the epoch scheme must sit below the Theorem 2/3 envelope evaluated with
the coefficient ``ρ = rho_infinity(A)`` and the *measured* delay bound
``tau_observed`` from the run's own write-log.

The bound chain: Theorem 2(a)/3(a) per synchronized epoch gives
``E_final ≤ (1 − ν_τ(β)/2κ)^epochs · E_0`` in the squared A-norm, and
``λ_min‖e‖² ≤ ‖e‖²_A`` / ``‖r‖² ≤ λ_max‖e‖²_A`` convert it to residuals
at the price of one condition-number factor. The theorem bounds an
*expectation*, so a Markov slack factor is applied; when the measured τ
is so large that ``ν_τ ≤ 0`` (heavy oversubscription) the envelope is
vacuous — clamped at 1, i.e. "no worse than where it started", which a
convergent run always beats.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.theory import nu_tau, rho_infinity, theorem2_epoch_bound
from repro.execution import AsyRK, ProcessAsyRGS
from repro.rng import DirectionStream
from repro.workloads import random_unit_diagonal_spd

pytestmark = pytest.mark.multiprocess

# Markov: P(X > 100·E[X]) < 1%. Applied in the squared-A-norm domain.
SLACK = 100.0


def relative_residual(A, x, b):
    return float(np.linalg.norm(b - A.matvec(x)) / np.linalg.norm(b))


class TestEpochSchemeBound:
    @given(seed=st.integers(0, 6))
    @settings(max_examples=5, deadline=None, derandomize=True)
    def test_residual_below_rho_envelope(self, seed):
        A = random_unit_diagonal_spd(
            24, nnz_per_row=3, offdiag_scale=0.5, seed=seed
        )
        n = A.shape[0]
        x_star = DirectionStream(n, seed=seed + 100).directions(0, n).astype(
            np.float64
        ) / n - 0.5
        b = A.matvec(x_star)
        sweeps, sync_every = 40, 2
        res = ProcessAsyRGS(
            A, b, nproc=2, directions=DirectionStream(n, seed=seed)
        ).solve(tol=0.0, max_sweeps=sweeps, sync_every_sweeps=sync_every)
        assert res.iterations == sweeps * n

        rho = rho_infinity(A)
        tau = res.tau_observed.max
        eigs = np.linalg.eigvalsh(A.to_dense())
        lam_min, lam_max = float(eigs[0]), float(eigs[-1])
        assert lam_min > 0  # the generator promises SPD

        epochs = res.sync_points
        envelope = float(
            theorem2_epoch_bound(epochs, 1.0, rho, tau, lam_min, lam_max)
        )
        if nu_tau(1.0, rho, tau) <= 0:
            # Measured τ violates the hypothesis (single-CPU
            # oversubscription does this): the theorem promises nothing,
            # so the honest envelope is "no growth".
            envelope = 1.0
        envelope = min(envelope, 1.0)

        # ‖r_m‖²/‖r_0‖² ≤ κ · (E_m/E_0) with E in the squared A-norm.
        kappa = lam_max / lam_min
        residual_bound = np.sqrt(kappa * SLACK * envelope)
        final = relative_residual(A, res.x, b)
        initial = relative_residual(A, np.zeros(n), b)
        assert final <= residual_bound * initial

    @given(seed=st.integers(0, 4))
    @settings(max_examples=3, deadline=None, derandomize=True)
    def test_observed_tau_reported_consistently(self, seed):
        """The write-log must be self-consistent across seeds: counts
        cover every update and the max dominates the retained samples."""
        A = random_unit_diagonal_spd(
            20, nnz_per_row=3, offdiag_scale=0.5, seed=seed
        )
        b = A.matvec(np.linspace(-1, 1, 20))
        res = ProcessAsyRGS(A, b, nproc=2).solve(
            tol=0.0, max_sweeps=10, sync_every_sweeps=5
        )
        stats = res.tau_observed
        assert stats.count == res.iterations
        if stats.samples.size:
            assert stats.samples.max() <= stats.max
            assert stats.samples.min() >= 0


class TestSerialEquivalence:
    """A one-worker pool is bit-identical to a serial Python reference.

    At ``nproc=1`` there is no concurrency, so the refactored pool core
    (draw chunking, progress ticketing, the active-set machinery) must
    be arithmetically invisible: the iterate after ``run()`` has to
    equal — ``np.array_equal``, not ``allclose`` — a plain Python loop
    consuming the same :class:`DirectionStream` prefix with the same
    float64 update expressions. Run twice on the *same* persistent pool:
    the generation bump rewinds each worker's stream position to 0, so
    pool reuse must replay the exact same trajectory.
    """

    @given(seed=st.integers(0, 5))
    @settings(max_examples=3, deadline=None, derandomize=True)
    def test_asyrgs_bit_identical_to_serial_reference_across_reuse(self, seed):
        A = random_unit_diagonal_spd(
            18, nnz_per_row=3, offdiag_scale=0.4, seed=seed
        )
        n = A.shape[0]
        b = A.matvec(np.linspace(-1.0, 1.0, n))
        beta, total = 0.9, 3 * n

        # Serial reference: the exact k=1 AsyRGS relaxation, consuming
        # worker 0's (== the global) stream prefix in draw order.
        rows = DirectionStream(n, seed=seed).for_processor(0, 1).directions(0, total)
        diag = A.diagonal()
        x_ref = np.zeros(n)
        for r in rows:
            r = int(r)
            s, e = int(A.indptr[r]), int(A.indptr[r + 1])
            cols = A.indices[s:e]
            gamma = (b[r] - float(A.data[s:e] @ x_ref[cols])) / diag[r]
            x_ref[r] += beta * gamma

        with ProcessAsyRGS(
            A, b, nproc=1, beta=beta, directions=DirectionStream(n, seed=seed)
        ) as solver:
            first = solver.run(None, total)
            second = solver.run(None, total)
        assert solver.spawn_count == 1  # both calls served by one pool
        assert first.per_worker_iterations == [total]
        assert np.array_equal(first.x, x_ref)
        assert np.array_equal(second.x, x_ref)

    @given(seed=st.integers(0, 5))
    @settings(max_examples=3, deadline=None, derandomize=True)
    def test_asyrk_bit_identical_to_serial_reference_across_reuse(self, seed):
        # A consistent square SPD system: Kaczmarz draws over the same
        # row space AsyRGS does, so the two methods' streams align and
        # only the update arithmetic differs.
        A = random_unit_diagonal_spd(
            18, nnz_per_row=3, offdiag_scale=0.4, seed=seed
        )
        n = A.shape[0]
        b = A.matvec(np.linspace(-1.0, 1.0, n))
        beta, total = 0.8, 3 * n

        # Serial reference: the exact k=1 Kaczmarz row projection.
        rows = DirectionStream(n, seed=seed).for_processor(0, 1).directions(0, total)
        norms = A.row_squared_sums()
        x_ref = np.zeros(n)
        for r in rows:
            r = int(r)
            s, e = int(A.indptr[r]), int(A.indptr[r + 1])
            cols = A.indices[s:e]
            vals = A.data[s:e]
            gamma = (b[r] - float(vals @ x_ref[cols])) / norms[r]
            x_ref[cols] += (beta * gamma) * vals

        with AsyRK(
            A, b, nproc=1, beta=beta, directions=DirectionStream(n, seed=seed)
        ) as solver:
            first = solver.run(None, total)
            second = solver.run(None, total)
        assert solver.spawn_count == 1
        assert first.per_worker_iterations == [total]
        assert np.array_equal(first.x, x_ref)
        assert np.array_equal(second.x, x_ref)
