"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.sparse import write_matrix_market
from repro.workloads import random_unit_diagonal_spd


@pytest.fixture()
def matrix_file(tmp_path):
    A = random_unit_diagonal_spd(30, nnz_per_row=4, offdiag_scale=0.6, seed=1)
    path = tmp_path / "system.mtx"
    write_matrix_market(A, path)
    return path, A


@pytest.fixture(autouse=True)
def results_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RESULTS", str(tmp_path / "results"))


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_solve_defaults(self):
        args = build_parser().parse_args(["solve", "m.mtx"])
        assert args.method == "asyrgs"
        assert args.nproc == 8

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])

    def test_block_experiment_known(self):
        args = build_parser().parse_args(["experiment", "block"])
        assert args.name == "block"
        assert args.retire is False

    def test_block_retire_mode_parsed(self):
        args = build_parser().parse_args(["experiment", "block", "--retire"])
        assert args.retire is True

    def test_retire_rejected_for_other_experiments(self, capsys):
        code = main(["experiment", "fig1", "--retire"])
        assert code == 2
        assert "mode of the 'block' experiment" in capsys.readouterr().out

    def test_solve_no_retire_parsed(self):
        args = build_parser().parse_args(["solve", "m.mtx", "--no-retire"])
        assert args.no_retire is True


class TestSpeedup:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["speedup"])
        assert args.nproc == 4
        assert args.problem == "laplace2d"
        assert args.labels == 1

    @pytest.mark.multiprocess
    def test_reports_wallclock_scaling(self, capsys):
        code = main(["speedup", "--nproc", "2", "--sweeps", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Strong scaling" in out
        assert "tau_obs" in out

    @pytest.mark.multiprocess
    def test_block_scaling_with_labels(self, capsys):
        code = main(["speedup", "--nproc", "2", "--sweeps", "2", "--labels", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "3-label block" in out


class TestSolve:
    @pytest.mark.multiprocess
    def test_processes_engine(self, matrix_file, capsys):
        path, _ = matrix_file
        code = main(
            ["solve", str(path), "--engine", "processes", "--nproc", "2",
             "--tol", "1e-8", "--max-sweeps", "2000"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "converged=True" in out
        assert "tau_observed" in out

    @pytest.mark.parametrize("method", ["asyrgs", "rgs", "cg", "fcg"])
    def test_solves_to_tolerance(self, matrix_file, method, capsys):
        path, A = matrix_file
        code = main(
            ["solve", str(path), "--method", method, "--tol", "1e-8",
             "--max-sweeps", "2000", "--nproc", "4"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "converged=True" in out

    def test_auto_beta(self, matrix_file, capsys):
        path, _ = matrix_file
        code = main(
            ["solve", str(path), "--beta", "auto", "--tol", "1e-6",
             "--max-sweeps", "2000"]
        )
        assert code == 0

    def test_custom_rhs_and_output(self, matrix_file, tmp_path, capsys):
        path, A = matrix_file
        rhs = tmp_path / "b.txt"
        x_star = np.linspace(-1, 1, A.shape[0])
        np.savetxt(rhs, A.matvec(x_star))
        out_file = tmp_path / "x.txt"
        code = main(
            ["solve", str(path), "--rhs", str(rhs), "--output", str(out_file),
             "--tol", "1e-10", "--max-sweeps", "3000"]
        )
        assert code == 0
        x = np.loadtxt(out_file)
        np.testing.assert_allclose(x, x_star, atol=1e-7)

    def test_nonconvergence_exit_code(self, matrix_file, capsys):
        path, _ = matrix_file
        code = main(
            ["solve", str(path), "--tol", "1e-14", "--max-sweeps", "1"]
        )
        assert code == 1


class TestSolveMultiRHS:
    @pytest.fixture()
    def block_rhs_file(self, matrix_file, tmp_path):
        path, A = matrix_file
        n = A.shape[0]
        X_star = np.column_stack(
            [np.linspace(-1, 1, n), np.linspace(1, 2, n), np.sin(np.arange(n))]
        )
        rhs = tmp_path / "B.txt"
        np.savetxt(rhs, A.matmat(X_star))
        return rhs, X_star

    def test_block_rhs_preserved_not_flattened(self, matrix_file, block_rhs_file,
                                               tmp_path, capsys):
        """A 3-column RHS file is solved as one simultaneous block and
        the solution file keeps the (n, 3) shape."""
        path, A = matrix_file
        rhs, X_star = block_rhs_file
        out_file = tmp_path / "X.txt"
        code = main(
            ["solve", str(path), "--rhs", str(rhs), "--output", str(out_file),
             "--tol", "1e-10", "--max-sweeps", "3000"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "3 RHS columns" in out
        X = np.loadtxt(out_file)
        assert X.shape == X_star.shape
        np.testing.assert_allclose(X, X_star, atol=1e-7)

    @pytest.mark.multiprocess
    def test_block_rhs_processes_engine(self, matrix_file, block_rhs_file, capsys):
        path, _ = matrix_file
        rhs, _ = block_rhs_file
        code = main(
            ["solve", str(path), "--rhs", str(rhs), "--engine", "processes",
             "--nproc", "2", "--tol", "1e-8", "--max-sweeps", "2000"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "converged=True" in out
        assert "3 RHS columns" in out
        assert "tau_observed" in out

    def test_block_rhs_rgs_method(self, matrix_file, block_rhs_file, capsys):
        path, _ = matrix_file
        rhs, _ = block_rhs_file
        code = main(
            ["solve", str(path), "--rhs", str(rhs), "--method", "rgs",
             "--tol", "1e-8", "--max-sweeps", "2000"]
        )
        assert code == 0
        assert "converged=True" in capsys.readouterr().out

    @pytest.mark.parametrize("method", ["cg", "fcg"])
    def test_block_rhs_rejected_for_krylov(self, matrix_file, block_rhs_file,
                                           method, capsys):
        path, _ = matrix_file
        rhs, _ = block_rhs_file
        code = main(["solve", str(path), "--rhs", str(rhs), "--method", method])
        assert code == 2
        assert "one right-hand side at a time" in capsys.readouterr().out

    def test_per_column_status_printed(self, matrix_file, block_rhs_file, capsys):
        """A block solve reports which columns converged and what the
        retirement saved."""
        path, _ = matrix_file
        rhs, _ = block_rhs_file
        code = main(
            ["solve", str(path), "--rhs", str(rhs),
             "--tol", "1e-8", "--max-sweeps", "2000"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "columns: 3/3 below tol" in out
        assert "retired between sweeps" in out
        assert "column updates" in out

    def test_no_retire_flag(self, matrix_file, block_rhs_file, capsys):
        path, _ = matrix_file
        rhs, _ = block_rhs_file
        code = main(
            ["solve", str(path), "--rhs", str(rhs), "--no-retire",
             "--tol", "1e-8", "--max-sweeps", "2000"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "columns: 3/3 below tol" in out
        assert "no retirement" in out

    def test_mismatched_rhs_rows_rejected(self, matrix_file, tmp_path, capsys):
        """The old behavior silently flattened an (n, k) file into one
        nk-long vector; now any row-count mismatch is a clear error."""
        path, A = matrix_file
        rhs = tmp_path / "bad.txt"
        np.savetxt(rhs, np.ones(A.shape[0] - 1))
        code = main(["solve", str(path), "--rhs", str(rhs)])
        assert code == 2
        out = capsys.readouterr().out
        assert "row counts must match" in out


class TestEstimate:
    def test_reports_diagnostics(self, matrix_file, capsys):
        path, _ = matrix_file
        code = main(["estimate", str(path), "--tau", "8"])
        assert code == 0
        out = capsys.readouterr().out
        assert "kappa" in out
        assert "rho" in out
        assert "Theorem" in out

    def test_without_tau(self, matrix_file, capsys):
        path, _ = matrix_file
        code = main(["estimate", str(path)])
        assert code == 0
        assert "Theorem" not in capsys.readouterr().out


class TestExperimentAndProblems:
    def test_problems_listing(self, capsys):
        code = main(["problems"])
        assert code == 0
        out = capsys.readouterr().out
        assert "social-small" in out
        assert "laplace2d" in out

    def test_experiment_runs_small_driver(self, capsys):
        code = main(["experiment", "direction-strategies"])
        assert code == 0
        out = capsys.readouterr().out
        assert "strategy" in out

    def test_experiment_problem_override(self, capsys):
        code = main(["experiment", "direction-strategies", "--problem", "banded"])
        assert code == 0
        assert "banded" in capsys.readouterr().out

    @pytest.mark.multiprocess
    def test_block_retire_mode_runs(self, capsys):
        code = main(["experiment", "block", "--retire", "--problem", "social-small"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Column retirement" in out
        assert "fewer column updates" in out


class TestExperimentEdgeCases:
    def test_problem_override_rejected_for_fixed_experiments(self, capsys):
        code = main(["experiment", "motivation", "--problem", "banded"])
        assert code == 2
        assert "does not take" in capsys.readouterr().out
