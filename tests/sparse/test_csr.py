"""Unit tests for the CSR matrix: structure, products, transforms."""

import numpy as np
import pytest

from repro.exceptions import ShapeError, StructureError
from repro.sparse import COOBuilder, CSRMatrix

from ..conftest import random_dense, to_scipy


def make(dense):
    return CSRMatrix.from_dense(np.asarray(dense, dtype=np.float64))


class TestConstruction:
    def test_from_dense_roundtrip(self):
        d = random_dense(7, 5, seed=1)
        np.testing.assert_array_equal(make(d).to_dense(), d)

    def test_from_dense_rejects_1d(self):
        with pytest.raises(ShapeError):
            CSRMatrix.from_dense(np.ones(3))

    def test_from_dense_tolerance_drops_small(self):
        d = np.array([[1e-12, 1.0], [0.0, 2.0]])
        A = CSRMatrix.from_dense(d, tol=1e-10)
        assert A.nnz == 2

    def test_identity(self):
        I = CSRMatrix.identity(4)
        np.testing.assert_array_equal(I.to_dense(), np.eye(4))

    def test_identity_scaled(self):
        I = CSRMatrix.identity(3, scale=2.5)
        np.testing.assert_array_equal(I.diagonal(), [2.5, 2.5, 2.5])

    def test_from_diagonal(self):
        D = CSRMatrix.from_diagonal([1.0, -2.0, 3.0])
        np.testing.assert_array_equal(D.to_dense(), np.diag([1.0, -2.0, 3.0]))

    def test_unsorted_rows_get_sorted(self):
        A = CSRMatrix(
            (1, 3),
            [0, 3],
            [2, 0, 1],
            [3.0, 1.0, 2.0],
        )
        np.testing.assert_array_equal(A.indices, [0, 1, 2])
        np.testing.assert_array_equal(A.data, [1.0, 2.0, 3.0])

    def test_bad_indptr_start(self):
        with pytest.raises(StructureError):
            CSRMatrix((1, 2), [1, 1], [], [])

    def test_decreasing_indptr_rejected(self):
        with pytest.raises(StructureError):
            CSRMatrix((2, 2), [0, 2, 1], [0, 1], [1.0, 2.0])

    def test_indptr_nnz_mismatch_rejected(self):
        with pytest.raises(StructureError):
            CSRMatrix((1, 2), [0, 5], [0], [1.0])

    def test_column_out_of_range_rejected(self):
        with pytest.raises(StructureError):
            CSRMatrix((1, 2), [0, 1], [5], [1.0])

    def test_duplicate_columns_rejected(self):
        with pytest.raises(StructureError):
            CSRMatrix((1, 3), [0, 2], [1, 1], [1.0, 2.0])

    def test_length_mismatch_rejected(self):
        with pytest.raises(StructureError):
            CSRMatrix((1, 3), [0, 2], [0, 1], [1.0])

    def test_integer_data_promoted_to_float(self):
        A = CSRMatrix((1, 2), [0, 1], [0], np.array([3], dtype=np.int32))
        assert A.dtype == np.float64

    def test_copy_is_independent(self):
        A = make([[1.0, 2.0], [0.0, 3.0]])
        B = A.copy()
        B.data[0] = 99.0
        assert A.data[0] == 1.0


class TestAccess:
    def test_get_present_and_absent(self):
        A = make([[1.0, 0.0], [0.0, 2.0]])
        assert A.get(0, 0) == 1.0
        assert A.get(0, 1) == 0.0

    def test_get_out_of_range(self):
        A = make([[1.0]])
        with pytest.raises(ShapeError):
            A.get(1, 0)

    def test_row_view(self):
        A = make([[0.0, 5.0, 7.0], [0.0, 0.0, 0.0]])
        cols, vals = A.row(0)
        np.testing.assert_array_equal(cols, [1, 2])
        np.testing.assert_array_equal(vals, [5.0, 7.0])
        cols_empty, vals_empty = A.row(1)
        assert cols_empty.size == 0 and vals_empty.size == 0

    def test_row_out_of_range(self):
        with pytest.raises(ShapeError):
            make([[1.0]]).row(3)

    def test_row_nnz(self):
        A = make([[1.0, 2.0], [0.0, 0.0], [3.0, 0.0]])
        np.testing.assert_array_equal(A.row_nnz(), [2, 0, 1])

    def test_iter_rows(self):
        d = random_dense(5, 5, seed=3)
        A = make(d)
        for i, cols, vals in A.iter_rows():
            reconstructed = np.zeros(5)
            reconstructed[cols] = vals
            np.testing.assert_array_equal(reconstructed, d[i])

    def test_row_dot_matches_dense(self):
        d = random_dense(6, 6, seed=4)
        A = make(d)
        x = np.arange(6, dtype=float)
        for i in range(6):
            assert A.row_dot(i, x) == pytest.approx(d[i] @ x)

    def test_rows_dot_matches_dense_vector(self):
        d = random_dense(8, 6, seed=5)
        A = make(d)
        x = np.linspace(-1, 1, 6)
        rows = np.array([3, 0, 3, 7, 1])
        np.testing.assert_allclose(A.rows_dot(rows, x), d[rows] @ x, atol=1e-14)

    def test_rows_dot_matches_dense_matrix(self):
        d = random_dense(8, 6, seed=6)
        A = make(d)
        X = random_dense(6, 3, seed=7, density=1.0)
        rows = np.array([1, 1, 5, 0])
        np.testing.assert_allclose(A.rows_dot(rows, X), d[rows] @ X, atol=1e-14)

    def test_rows_dot_with_empty_rows(self):
        d = np.zeros((4, 4))
        d[1] = [1.0, 0.0, 2.0, 0.0]
        A = make(d)
        rows = np.array([0, 1, 2, 3])
        x = np.ones(4)
        np.testing.assert_allclose(A.rows_dot(rows, x), [0.0, 3.0, 0.0, 0.0])

    def test_rows_dot_empty_selection(self):
        A = make(random_dense(3, 3, seed=8))
        out = A.rows_dot(np.empty(0, dtype=np.int64), np.ones(3))
        assert out.shape == (0,)

    def test_rows_dot_rejects_2d_rows(self):
        A = make(random_dense(3, 3, seed=8))
        with pytest.raises(ShapeError):
            A.rows_dot(np.zeros((2, 2), dtype=np.int64), np.ones(3))


class TestProducts:
    def test_matvec_matches_scipy(self):
        d = random_dense(9, 7, seed=9)
        A = make(d)
        x = np.linspace(0, 1, 7)
        np.testing.assert_allclose(A.matvec(x), to_scipy(A) @ x, atol=1e-13)

    def test_matvec_shape_check(self):
        with pytest.raises(ShapeError):
            make(random_dense(3, 4, seed=1)).matvec(np.ones(3))

    def test_matvec_empty_rows(self):
        A = make(np.zeros((3, 3)))
        np.testing.assert_array_equal(A.matvec(np.ones(3)), np.zeros(3))

    def test_rmatvec_matches_transpose_matvec(self):
        d = random_dense(6, 9, seed=10)
        A = make(d)
        y = np.linspace(-2, 2, 6)
        np.testing.assert_allclose(A.rmatvec(y), d.T @ y, atol=1e-13)

    def test_rmatvec_shape_check(self):
        with pytest.raises(ShapeError):
            make(random_dense(3, 4, seed=1)).rmatvec(np.ones(4))

    def test_matmat_matches_dense(self):
        d = random_dense(5, 4, seed=11)
        X = random_dense(4, 3, seed=12, density=1.0)
        np.testing.assert_allclose(make(d).matmat(X), d @ X, atol=1e-13)

    def test_matmat_shape_check(self):
        with pytest.raises(ShapeError):
            make(random_dense(3, 4, seed=1)).matmat(np.ones((3, 2)))

    def test_matmul_operator_vector(self):
        d = random_dense(4, 4, seed=13)
        x = np.ones(4)
        np.testing.assert_allclose(make(d) @ x, d @ x, atol=1e-14)

    def test_matmul_operator_matrix(self):
        d = random_dense(4, 4, seed=14)
        X = np.eye(4)
        np.testing.assert_allclose(make(d) @ X, d, atol=1e-14)

    def test_matmul_operator_sparse(self):
        a = random_dense(4, 5, seed=15)
        b = random_dense(5, 3, seed=16)
        C = make(a) @ make(b)
        np.testing.assert_allclose(C.to_dense(), a @ b, atol=1e-13)


class TestTransforms:
    def test_transpose_matches_dense(self):
        d = random_dense(6, 4, seed=17)
        np.testing.assert_array_equal(make(d).transpose().to_dense(), d.T)

    def test_transpose_twice_is_identity(self):
        d = random_dense(5, 7, seed=18)
        A = make(d)
        np.testing.assert_array_equal(A.T.T.to_dense(), d)

    def test_transpose_keeps_sorted_rows(self):
        d = random_dense(10, 10, seed=19)
        At = make(d).transpose()
        At._validate()  # raises on any violated invariant

    def test_diagonal(self):
        d = random_dense(6, 6, seed=20)
        np.testing.assert_array_equal(make(d).diagonal(), np.diag(d))

    def test_diagonal_rectangular(self):
        d = random_dense(3, 5, seed=21)
        np.testing.assert_array_equal(make(d).diagonal(), np.diag(d))

    def test_scale_rows(self):
        d = random_dense(4, 4, seed=22)
        s = np.array([1.0, 2.0, 0.5, -1.0])
        np.testing.assert_allclose(
            make(d).scale_rows(s).to_dense(), np.diag(s) @ d, atol=1e-14
        )

    def test_scale_cols(self):
        d = random_dense(4, 4, seed=23)
        s = np.array([1.0, 2.0, 0.5, -1.0])
        np.testing.assert_allclose(
            make(d).scale_cols(s).to_dense(), d @ np.diag(s), atol=1e-14
        )

    def test_scale_shape_checks(self):
        A = make(random_dense(3, 4, seed=1))
        with pytest.raises(ShapeError):
            A.scale_rows(np.ones(4))
        with pytest.raises(ShapeError):
            A.scale_cols(np.ones(3))

    def test_drop_explicit_zeros(self):
        b = COOBuilder(2, 2)
        b.add(0, 0, 1.0)
        b.add(0, 0, -1.0)
        b.add(1, 1, 2.0)
        A = b.to_csr()
        assert A.nnz == 2
        dropped = A.drop_explicit_zeros()
        assert dropped.nnz == 1
        assert dropped.get(1, 1) == 2.0


class TestPredicatesNorms:
    def test_is_symmetric_true(self):
        d = random_dense(5, 5, seed=24)
        sym = d + d.T
        assert make(sym).is_symmetric()

    def test_is_symmetric_false(self):
        d = np.array([[1.0, 2.0], [3.0, 1.0]])
        assert not make(d).is_symmetric()

    def test_is_symmetric_structural_mismatch(self):
        # Symmetric values, asymmetric stored pattern (explicit zero).
        b = COOBuilder(2, 2)
        b.add(0, 1, 0.0)
        b.add(0, 0, 1.0)
        b.add(1, 1, 1.0)
        assert b.to_csr().is_symmetric()

    def test_rectangular_not_symmetric(self):
        assert not make(random_dense(2, 3, seed=25)).is_symmetric()

    def test_has_unit_diagonal(self):
        assert CSRMatrix.identity(3).has_unit_diagonal()
        assert not CSRMatrix.from_diagonal([1.0, 2.0]).has_unit_diagonal()

    def test_infinity_norm(self):
        d = random_dense(6, 6, seed=26)
        assert make(d).infinity_norm() == pytest.approx(
            np.abs(d).sum(axis=1).max()
        )

    def test_one_norm(self):
        d = random_dense(6, 6, seed=27)
        assert make(d).one_norm() == pytest.approx(np.abs(d).sum(axis=0).max())

    def test_frobenius_norm(self):
        d = random_dense(6, 6, seed=28)
        assert make(d).frobenius_norm() == pytest.approx(np.linalg.norm(d))

    def test_row_squared_sums(self):
        d = random_dense(5, 5, seed=29)
        np.testing.assert_allclose(
            make(d).row_squared_sums(), (d * d).sum(axis=1), atol=1e-14
        )

    def test_empty_matrix_norms(self):
        A = make(np.zeros((3, 3)))
        assert A.infinity_norm() == 0.0
        assert A.one_norm() == 0.0
        assert A.frobenius_norm() == 0.0

    def test_repr_mentions_shape_and_nnz(self):
        A = make(np.eye(2))
        assert "shape=(2, 2)" in repr(A)
        assert "nnz=2" in repr(A)
