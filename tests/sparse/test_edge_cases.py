"""Edge-case tests for the sparse substrate: degenerate shapes and values."""

import numpy as np
import pytest

from repro.sparse import COOBuilder, CSRMatrix, gram, matmul, symmetric_rescale


class TestOneByOne:
    def test_scalar_matrix_roundtrip(self):
        A = CSRMatrix.from_dense([[2.5]])
        assert A.shape == (1, 1)
        assert A.matvec(np.array([2.0]))[0] == 5.0
        assert A.T.get(0, 0) == 2.5

    def test_scalar_rescale(self):
        A, d = symmetric_rescale(CSRMatrix.from_dense([[4.0]]))
        assert A.get(0, 0) == pytest.approx(1.0)
        assert d[0] == 2.0

    def test_scalar_gram(self):
        D = CSRMatrix.from_dense([[3.0]])
        assert gram(D).get(0, 0) == pytest.approx(9.0)


class TestDegenerateShapes:
    def test_single_row(self):
        A = CSRMatrix.from_dense(np.array([[1.0, 2.0, 3.0]]))
        np.testing.assert_allclose(A.matvec(np.ones(3)), [6.0])
        np.testing.assert_allclose(A.rmatvec(np.array([2.0])), [2.0, 4.0, 6.0])

    def test_single_column(self):
        A = CSRMatrix.from_dense(np.array([[1.0], [2.0], [0.0]]))
        np.testing.assert_allclose(A.matvec(np.array([3.0])), [3.0, 6.0, 0.0])
        assert A.row_nnz().tolist() == [1, 1, 0]

    def test_all_zero_matrix_operations(self):
        A = CSRMatrix.from_dense(np.zeros((3, 3)))
        assert A.nnz == 0
        assert A.is_symmetric()
        np.testing.assert_array_equal(A.diagonal(), np.zeros(3))
        assert matmul(A, A).nnz == 0
        np.testing.assert_array_equal(
            A.rows_dot(np.array([0, 1, 2]), np.ones(3)), np.zeros(3)
        )

    def test_fully_dense_row(self):
        d = np.zeros((4, 4))
        d[2] = [1.0, 2.0, 3.0, 4.0]
        A = CSRMatrix.from_dense(d)
        cols, vals = A.row(2)
        assert cols.size == 4
        assert A.row_dot(2, np.ones(4)) == 10.0


class TestExtremeValues:
    def test_tiny_and_huge_magnitudes_coexist(self):
        A = CSRMatrix.from_dense(np.array([[1e-300, 0.0], [0.0, 1e300]]))
        assert A.get(0, 0) == 1e-300
        assert A.get(1, 1) == 1e300
        assert A.frobenius_norm() == pytest.approx(1e300)

    def test_negative_zero_is_structural(self):
        b = COOBuilder(1, 1)
        b.add(0, 0, -0.0)
        A = b.to_csr()
        assert A.nnz == 1  # explicit entries survive regardless of value

    def test_builder_cancellation_then_product(self):
        b = COOBuilder(2, 2)
        b.add(0, 1, 5.0)
        b.add(0, 1, -5.0)
        b.add(1, 1, 1.0)
        A = b.to_csr()
        # Explicit zero participates harmlessly in products.
        np.testing.assert_allclose(A.matvec(np.ones(2)), [0.0, 1.0])


class TestIterationConsistency:
    def test_iter_rows_agrees_with_row(self):
        rng = np.random.default_rng(5)
        d = np.where(rng.random((6, 6)) < 0.4, rng.normal(size=(6, 6)), 0.0)
        A = CSRMatrix.from_dense(d)
        for i, cols, vals in A.iter_rows():
            c2, v2 = A.row(i)
            np.testing.assert_array_equal(cols, c2)
            np.testing.assert_array_equal(vals, v2)

    def test_get_against_dense_everywhere(self):
        rng = np.random.default_rng(6)
        d = np.where(rng.random((5, 7)) < 0.3, rng.normal(size=(5, 7)), 0.0)
        A = CSRMatrix.from_dense(d)
        for i in range(5):
            for j in range(7):
                assert A.get(i, j) == d[i, j]
