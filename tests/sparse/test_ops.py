"""Unit tests for sparse algebra: rescale, gram, matmul, add, permute."""

import numpy as np
import pytest

from repro.exceptions import NotPositiveDefiniteError, ShapeError, StructureError
from repro.sparse import (
    CSRMatrix,
    add,
    apply_unit_diagonal_map,
    gram,
    matmul,
    max_abs_difference,
    permute_symmetric,
    row_nnz_statistics,
    symmetric_rescale,
)

from ..conftest import random_dense


def make(dense):
    return CSRMatrix.from_dense(np.asarray(dense, dtype=np.float64))


def spd_dense(n, seed=0):
    d = random_dense(n, n, seed=seed, density=0.5)
    return d @ d.T + n * np.eye(n)


class TestSymmetricRescale:
    def test_produces_unit_diagonal(self):
        B = make(spd_dense(8, seed=1))
        A, d = symmetric_rescale(B)
        assert A.has_unit_diagonal(tol=1e-12)

    def test_rescale_formula(self):
        dense = spd_dense(6, seed=2)
        B = make(dense)
        A, d = symmetric_rescale(B)
        expected = dense / np.outer(d, d)
        np.testing.assert_allclose(A.to_dense(), expected, atol=1e-13)

    def test_d_is_sqrt_diagonal(self):
        dense = spd_dense(5, seed=3)
        _, d = symmetric_rescale(make(dense))
        np.testing.assert_allclose(d, np.sqrt(np.diag(dense)))

    def test_rejects_nonpositive_diagonal(self):
        with pytest.raises(NotPositiveDefiniteError):
            symmetric_rescale(make([[1.0, 0.0], [0.0, -2.0]]))

    def test_rejects_rectangular(self):
        with pytest.raises(ShapeError):
            symmetric_rescale(make(random_dense(2, 3, seed=4)))

    def test_solution_map_roundtrip(self):
        """Solving the rescaled system recovers the original solution
        through the Section-3 equivalence transform."""
        dense = spd_dense(6, seed=5)
        B = make(dense)
        z = np.linspace(1, 2, 6)
        y_direct = np.linalg.solve(dense, z)
        A, d = symmetric_rescale(B)
        b = apply_unit_diagonal_map(d, b=z)
        x = np.linalg.solve(A.to_dense(), b)
        y = apply_unit_diagonal_map(d, x=x)
        np.testing.assert_allclose(y, y_direct, atol=1e-10)

    def test_map_requires_exactly_one_argument(self):
        with pytest.raises(ValueError):
            apply_unit_diagonal_map(np.ones(2))
        with pytest.raises(ValueError):
            apply_unit_diagonal_map(np.ones(2), x=np.ones(2), b=np.ones(2))

    def test_map_shape_check(self):
        with pytest.raises(ShapeError):
            apply_unit_diagonal_map(np.ones(2), x=np.ones(3))

    def test_map_matrix_rhs(self):
        d = np.array([2.0, 4.0])
        X = np.ones((2, 3))
        out = apply_unit_diagonal_map(d, x=X)
        np.testing.assert_allclose(out, X / d[:, None])


class TestGram:
    def test_matches_dense(self):
        d = random_dense(10, 6, seed=6)
        G = gram(make(d))
        np.testing.assert_allclose(G.to_dense(), d.T @ d, atol=1e-12)

    def test_shift_adds_identity(self):
        d = random_dense(8, 5, seed=7)
        G = gram(make(d), shift=2.5)
        np.testing.assert_allclose(G.to_dense(), d.T @ d + 2.5 * np.eye(5), atol=1e-12)

    def test_gram_is_symmetric(self):
        d = random_dense(12, 7, seed=8)
        assert gram(make(d)).is_symmetric(tol=1e-12)

    def test_gram_empty_columns(self):
        d = np.zeros((4, 3))
        d[:, 0] = 1.0
        G = gram(make(d))
        assert G.get(0, 0) == pytest.approx(4.0)
        assert G.get(1, 1) == 0.0

    def test_gram_empty_columns_with_shift(self):
        d = np.zeros((4, 3))
        d[:, 0] = 1.0
        G = gram(make(d), shift=1.0)
        assert G.get(1, 1) == pytest.approx(1.0)
        assert G.get(2, 2) == pytest.approx(1.0)


class TestMatmul:
    def test_matches_dense(self):
        a = random_dense(5, 7, seed=9)
        b = random_dense(7, 4, seed=10)
        np.testing.assert_allclose(
            matmul(make(a), make(b)).to_dense(), a @ b, atol=1e-12
        )

    def test_identity_neutral(self):
        a = random_dense(4, 4, seed=11)
        I = CSRMatrix.identity(4)
        np.testing.assert_allclose(matmul(make(a), I).to_dense(), a, atol=1e-14)
        np.testing.assert_allclose(matmul(I, make(a)).to_dense(), a, atol=1e-14)

    def test_shape_mismatch(self):
        with pytest.raises(ShapeError):
            matmul(make(random_dense(2, 3, seed=1)), make(random_dense(2, 3, seed=2)))

    def test_zero_result_rows(self):
        a = np.zeros((3, 3))
        a[0, 0] = 1.0
        c = matmul(make(a), make(a))
        assert c.nnz == 1


class TestAdd:
    def test_add_matches_dense(self):
        a = random_dense(6, 6, seed=12)
        b = random_dense(6, 6, seed=13)
        np.testing.assert_allclose(
            add(make(a), make(b)).to_dense(), a + b, atol=1e-13
        )

    def test_scaled_combination(self):
        a = random_dense(4, 4, seed=14)
        b = random_dense(4, 4, seed=15)
        np.testing.assert_allclose(
            add(make(a), make(b), alpha=2.0, beta=-0.5).to_dense(),
            2.0 * a - 0.5 * b,
            atol=1e-13,
        )

    def test_shape_mismatch(self):
        with pytest.raises(ShapeError):
            add(make(random_dense(2, 2, seed=1)), make(random_dense(3, 3, seed=1)))

    def test_max_abs_difference(self):
        a = random_dense(5, 5, seed=16)
        b = a.copy()
        b[2, 3] += 0.75
        assert max_abs_difference(make(a), make(b)) == pytest.approx(0.75)

    def test_max_abs_difference_identical(self):
        a = random_dense(5, 5, seed=17)
        assert max_abs_difference(make(a), make(a)) <= 1e-15


class TestPermute:
    def test_permutation_matches_dense(self):
        a = spd_dense(6, seed=18)
        perm = np.array([3, 1, 5, 0, 2, 4])
        P = np.eye(6)[perm]  # rows of identity in old order
        # permute_symmetric places old index perm[i] at new position i.
        expected = a[np.ix_(perm, perm)]
        np.testing.assert_allclose(
            permute_symmetric(make(a), perm).to_dense(), expected, atol=1e-13
        )
        assert P is not None  # silence linter on intermediate

    def test_identity_permutation(self):
        a = spd_dense(4, seed=19)
        np.testing.assert_allclose(
            permute_symmetric(make(a), np.arange(4)).to_dense(), a, atol=1e-14
        )

    def test_invalid_permutation_rejected(self):
        a = make(spd_dense(3, seed=20))
        with pytest.raises(StructureError):
            permute_symmetric(a, np.array([0, 0, 1]))

    def test_rectangular_rejected(self):
        with pytest.raises(ShapeError):
            permute_symmetric(make(random_dense(2, 3, seed=1)), np.array([0, 1]))


class TestRowStats:
    def test_statistics_values(self):
        d = np.zeros((4, 4))
        d[0, :] = 1.0  # 4 entries
        d[1, 0] = 1.0  # 1 entry
        stats = row_nnz_statistics(make(d))
        assert stats["min"] == 1.0
        assert stats["max"] == 4.0
        assert stats["skew_ratio"] == 4.0
        assert stats["empty_rows"] == 2.0

    def test_statistics_empty_matrix(self):
        stats = row_nnz_statistics(make(np.zeros((3, 3))))
        assert stats["max"] == 0.0
        assert stats["empty_rows"] == 3.0
