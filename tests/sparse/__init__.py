"""Test package."""
