"""Unit tests for MatrixMarket I/O."""

import numpy as np
import pytest

from repro.exceptions import StructureError
from repro.sparse import (
    CSRMatrix,
    max_abs_difference,
    read_matrix_market,
    write_matrix_market,
)

from ..conftest import random_dense


def make(dense):
    return CSRMatrix.from_dense(np.asarray(dense, dtype=np.float64))


class TestRoundTrip:
    def test_general_roundtrip(self, tmp_path):
        A = make(random_dense(7, 5, seed=1))
        path = tmp_path / "a.mtx"
        write_matrix_market(A, path)
        B = read_matrix_market(path)
        assert B.shape == A.shape
        assert max_abs_difference(A, B) <= 1e-15

    def test_symmetric_roundtrip(self, tmp_path):
        d = random_dense(6, 6, seed=2)
        A = make(d + d.T + 10 * np.eye(6))
        path = tmp_path / "s.mtx"
        write_matrix_market(A, path, symmetric=True)
        B = read_matrix_market(path)
        assert B.is_symmetric()
        assert max_abs_difference(A, B) <= 1e-15

    def test_symmetric_autodetect(self, tmp_path):
        d = random_dense(5, 5, seed=3)
        A = make(d + d.T)
        path = tmp_path / "auto.mtx"
        write_matrix_market(A, path)
        header = path.read_text().splitlines()[0]
        assert "symmetric" in header

    def test_general_header_for_unsymmetric(self, tmp_path):
        A = make(random_dense(4, 4, seed=4))
        path = tmp_path / "g.mtx"
        write_matrix_market(A, path)
        assert "general" in path.read_text().splitlines()[0]

    def test_values_exact_roundtrip(self, tmp_path):
        """repr-based writing must preserve doubles bit-for-bit."""
        A = make([[np.pi, 0.0], [0.0, 1.0 / 3.0]])
        path = tmp_path / "exact.mtx"
        write_matrix_market(A, path)
        B = read_matrix_market(path)
        assert B.get(0, 0) == np.pi
        assert B.get(1, 1) == 1.0 / 3.0

    def test_empty_matrix_roundtrip(self, tmp_path):
        A = make(np.zeros((3, 4)))
        path = tmp_path / "empty.mtx"
        write_matrix_market(A, path)
        B = read_matrix_market(path)
        assert B.shape == (3, 4)
        assert B.nnz == 0


class TestErrors:
    def test_symmetric_requested_on_unsymmetric(self, tmp_path):
        A = make([[1.0, 2.0], [3.0, 4.0]])
        with pytest.raises(StructureError):
            write_matrix_market(A, tmp_path / "bad.mtx", symmetric=True)

    def test_bad_header_rejected(self, tmp_path):
        p = tmp_path / "bad.mtx"
        p.write_text("%%NotMatrixMarket nonsense\n1 1 0\n")
        with pytest.raises(StructureError):
            read_matrix_market(p)

    def test_unsupported_field_rejected(self, tmp_path):
        p = tmp_path / "cplx.mtx"
        p.write_text("%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1.0 2.0\n")
        with pytest.raises(StructureError):
            read_matrix_market(p)

    def test_unsupported_symmetry_rejected(self, tmp_path):
        p = tmp_path / "skew.mtx"
        p.write_text("%%MatrixMarket matrix coordinate real skew-symmetric\n1 1 0\n")
        with pytest.raises(StructureError):
            read_matrix_market(p)

    def test_entry_count_mismatch_rejected(self, tmp_path):
        p = tmp_path / "count.mtx"
        p.write_text("%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n")
        with pytest.raises(StructureError):
            read_matrix_market(p)

    def test_comments_are_skipped(self, tmp_path):
        p = tmp_path / "comments.mtx"
        p.write_text(
            "%%MatrixMarket matrix coordinate real general\n"
            "% a comment\n"
            "% another\n"
            "2 2 1\n"
            "2 1 -3.5\n"
        )
        A = read_matrix_market(p)
        assert A.get(1, 0) == -3.5
