"""Unit tests for the COO triplet builder."""

import numpy as np
import pytest

from repro.exceptions import ShapeError
from repro.sparse import COOBuilder


class TestConstruction:
    def test_empty_builder_produces_empty_matrix(self):
        A = COOBuilder(3, 4).to_csr()
        assert A.shape == (3, 4)
        assert A.nnz == 0

    def test_single_entry(self):
        b = COOBuilder(2, 2)
        b.add(1, 0, 3.5)
        A = b.to_csr()
        assert A.get(1, 0) == 3.5
        assert A.nnz == 1

    def test_negative_shape_rejected(self):
        with pytest.raises(ShapeError):
            COOBuilder(-1, 3)

    def test_len_counts_raw_triplets(self):
        b = COOBuilder(2, 2)
        b.add(0, 0, 1.0)
        b.add(0, 0, 1.0)
        assert len(b) == 2

    def test_shape_property(self):
        assert COOBuilder(3, 7).shape == (3, 7)


class TestDuplicates:
    def test_duplicates_are_summed(self):
        b = COOBuilder(2, 2)
        b.add(0, 1, 1.0)
        b.add(0, 1, 2.5)
        b.add(0, 1, -0.5)
        assert b.to_csr().get(0, 1) == pytest.approx(3.0)

    def test_cancellation_keeps_explicit_zero(self):
        b = COOBuilder(1, 1)
        b.add(0, 0, 1.0)
        b.add(0, 0, -1.0)
        A = b.to_csr()
        assert A.nnz == 1
        assert A.get(0, 0) == 0.0

    def test_merged_triplets_sorted_row_major(self):
        b = COOBuilder(3, 3)
        for r, c, v in [(2, 1, 1.0), (0, 2, 2.0), (2, 0, 3.0), (0, 0, 4.0)]:
            b.add(r, c, v)
        rows, cols, vals = b.merged_triplets()
        keys = rows * 3 + cols
        assert np.all(np.diff(keys) > 0)

    def test_merged_triplets_empty(self):
        rows, cols, vals = COOBuilder(2, 2).merged_triplets()
        assert rows.size == cols.size == vals.size == 0


class TestBounds:
    @pytest.mark.parametrize("r,c", [(-1, 0), (0, -1), (2, 0), (0, 2)])
    def test_out_of_bounds_add_rejected(self, r, c):
        with pytest.raises(ShapeError):
            COOBuilder(2, 2).add(r, c, 1.0)

    def test_out_of_bounds_batch_rejected(self):
        b = COOBuilder(2, 2)
        with pytest.raises(ShapeError):
            b.add_batch([0, 5], [0, 0], [1.0, 1.0])
        with pytest.raises(ShapeError):
            b.add_batch([0, 0], [0, -2], [1.0, 1.0])


class TestBatch:
    def test_add_batch_matches_scalar_adds(self):
        rows = [0, 1, 1, 2]
        cols = [1, 0, 2, 2]
        vals = [1.0, 2.0, 3.0, 4.0]
        b1 = COOBuilder(3, 3)
        b1.add_batch(rows, cols, vals)
        b2 = COOBuilder(3, 3)
        for r, c, v in zip(rows, cols, vals):
            b2.add(r, c, v)
        np.testing.assert_array_equal(b1.to_csr().to_dense(), b2.to_csr().to_dense())

    def test_add_batch_empty_is_noop(self):
        b = COOBuilder(2, 2)
        b.add_batch([], [], [])
        assert len(b) == 0

    def test_add_batch_length_mismatch(self):
        with pytest.raises(ShapeError):
            COOBuilder(2, 2).add_batch([0], [0, 1], [1.0])

    def test_add_batch_2d_rejected(self):
        with pytest.raises(ShapeError):
            COOBuilder(2, 2).add_batch([[0]], [[0]], [[1.0]])

    def test_growth_beyond_initial_capacity(self):
        b = COOBuilder(1000, 1000)
        n = 500
        b.add_batch(np.arange(n), np.arange(n), np.ones(n))
        A = b.to_csr()
        assert A.nnz == n
        np.testing.assert_allclose(A.diagonal()[:n], 1.0)


class TestSymmetric:
    def test_add_symmetric_offdiagonal(self):
        b = COOBuilder(3, 3)
        b.add_symmetric(0, 2, 5.0)
        A = b.to_csr()
        assert A.get(0, 2) == 5.0
        assert A.get(2, 0) == 5.0

    def test_add_symmetric_diagonal_once(self):
        b = COOBuilder(3, 3)
        b.add_symmetric(1, 1, 5.0)
        A = b.to_csr()
        assert A.get(1, 1) == 5.0
        assert A.nnz == 1

    def test_symmetric_build_yields_symmetric_csr(self):
        b = COOBuilder(4, 4)
        for i in range(4):
            b.add(i, i, 2.0)
        b.add_symmetric(0, 3, -1.0)
        b.add_symmetric(1, 2, -0.5)
        assert b.to_csr().is_symmetric()


class TestRoundTrip:
    def test_dense_roundtrip(self):
        dense = np.array([[1.0, 0.0, 2.0], [0.0, 0.0, 0.0], [3.0, 4.0, 0.0]])
        b = COOBuilder(3, 3)
        rows, cols = np.nonzero(dense)
        b.add_batch(rows, cols, dense[rows, cols])
        np.testing.assert_array_equal(b.to_csr().to_dense(), dense)

    def test_matches_scipy_coo(self):
        import scipy.sparse as sp

        rng = np.random.default_rng(0)
        rows = rng.integers(0, 20, size=200)
        cols = rng.integers(0, 15, size=200)
        vals = rng.normal(size=200)
        b = COOBuilder(20, 15)
        b.add_batch(rows, cols, vals)
        ours = b.to_csr().to_dense()
        theirs = sp.coo_matrix((vals, (rows, cols)), shape=(20, 15)).toarray()
        np.testing.assert_allclose(ours, theirs, atol=1e-14)
