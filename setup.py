"""Setuptools shim.

The canonical metadata lives in ``pyproject.toml``; this file exists so
the package installs in environments whose setuptools/pip lack PEP-660
editable-wheel support (``pip install -e . --no-build-isolation`` falls
back through here, and ``python setup.py develop`` works directly).
"""

from setuptools import setup

setup()
